package trace

import (
	"fmt"
	"strconv"

	"roadrunner/internal/fabric"
	"roadrunner/internal/params"
	"roadrunner/internal/sim"
	"roadrunner/internal/transport"
	"roadrunner/internal/units"
)

// Evaluator is the batch replay evaluation path: everything a replay
// repeats across placements — trace validation, the compiled record
// streams, the sim engine with its rank procs, the transport's HCA and
// link state, the per-send delivery events and the proc-name strings —
// is built once, and each Evaluate call replays the trace under a new
// rank→node mapping on the pooled state. The placement optimizer calls
// the replay tens of thousands of times; paying validation (O(records)
// map churn) and engine/transport construction per call would dominate
// the search, so the evaluator turns the replay from a one-shot
// reporter into a search-grade objective function.
//
// The record streams are compiled to a compact op array per rank:
// one cache line holds three ops instead of one-and-a-half records, the
// kind dispatch is a byte instead of a string compare, compute
// durations carry the configured scaling pre-applied, and compute ops
// are dropped entirely under SkipCompute. The rank procs are daemon
// procs that park between evaluations, so an evaluation spawns no
// goroutines and allocates nothing but the result itself.
//
// Evaluate(places) is pinned byte-identical to a fresh Replay call with
// the same config and placement (TestEvaluatorMatchesFreshReplay): the
// pooled engine resets to time zero with the same event ordering, the
// transport zeroes every counter, and the route cache only memoizes
// wiring facts. An Evaluator is single-goroutine; run one per worker
// for parallel search.
type Evaluator struct {
	tr    *Trace
	cfg   ReplayConfig
	scale float64

	eng     *sim.Engine
	net     *transport.Net
	inbox   []*sim.Mailbox[replayMsg]
	procs   []*sim.Proc // daemon walkers, one per rank
	deliver []func()    // per-send delivery events, canonical send order
	nSends  int

	// pend carries each rank's in-flight fused compute+send: the op the
	// chain event issues and the transfer handle the woken walker
	// finishes.
	pendOp []*replayOp
	pendX  []*transport.Pending
	// chainFn is each rank's prebuilt compute-end event for fused
	// pairs: it issues the pending send from event context.
	chainFn []func()
	// match holds each rank's current recv-matching criteria, and
	// matchFn the per-rank predicate reading them: one closure per rank
	// for the evaluator's lifetime instead of one escaping closure per
	// recv per evaluation (the single largest allocation source of the
	// unpooled replay).
	match   []replayMsg
	matchFn []func(replayMsg) bool
	// pairs caches the transport PairPath per directed rank pair
	// (src*ranks+dst), cleared at each Evaluate (the placement decides
	// the node pair behind a rank pair). It drops even the transport's
	// pair-cache map lookup from the per-message cost; nil for traces
	// too wide for a dense table, where sends fall back to Transfer.
	pairs []*transport.PairPath

	// Per-evaluation state the walkers read.
	places    []transport.Endpoint
	sends     []MessageTiming // nil unless ObserveSends
	sendsBuf  []MessageTiming // reusable backing for sends
	res       *ReplayResult
	ranksDone int
	err       error

	used     bool // at least one Evaluate ran: reset and wake next time
	closed   bool
	borrowed bool // engine supplied by the caller: Close leaves it alone
}

// The compiled op kinds.
const (
	opCompute = iota
	opSend
	opRecv
	// opComputeSend is a compute record whose next record is its rank's
	// send: the walker parks once for the pair, chaining the compute
	// interval's end event straight into the send's transfer chain
	// (StartTransfer is event-context-safe). The calendar is identical
	// to the unfused execution — the compute's resume slot becomes the
	// chain step, which performs exactly the sends' issue-time work —
	// at one proc park/resume instead of two. Falls back to the unfused
	// shape at run time for intra-node and zero-size sends, whose
	// single-interval paths end on the proc itself.
	opComputeSend
)

// replayOp is one compiled record: just the fields the walker's hot
// loop touches, 40 bytes instead of a 104-byte Record.
type replayOp struct {
	op   uint8
	peer int32 // send destination / recv source rank
	tag  int32
	// aux is the send's Sends slot, or the recv's expected dep seq.
	aux  int32
	size units.Size
	dur  units.Time // compute duration, scaling pre-applied
}

// NewEvaluator validates the trace once and builds the pooled replay
// state for it. The config's Places field is ignored — the placement is
// the argument of each Evaluate call; everything else (fabric, profile,
// congestion policy, compute scaling, observers) is fixed for the
// evaluator's lifetime. Close releases the engine when done.
func NewEvaluator(t *Trace, cfg ReplayConfig) (*Evaluator, error) {
	return newEvaluator(nil, t, cfg)
}

// newEvaluatorOn builds an evaluator whose procs and events live on the
// supplied engine — a sim.Cluster domain, for batch replays that want
// the cluster's per-domain counters. The caller owns the engine's
// lifecycle (Close leaves it alone) and drives it between the
// evaluator's start and finish halves.
func newEvaluatorOn(eng *sim.Engine, t *Trace, cfg ReplayConfig) (*Evaluator, error) {
	return newEvaluator(eng, t, cfg)
}

func newEvaluator(eng *sim.Engine, t *Trace, cfg ReplayConfig) (*Evaluator, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if cfg.Fabric == nil {
		return nil, fmt.Errorf("trace: replay: nil fabric")
	}
	scale, err := computeScale(cfg.ComputeScale)
	if err != nil {
		return nil, err
	}
	ranks := t.Meta.Ranks
	e := &Evaluator{tr: t, cfg: cfg, scale: scale}

	// Compile the per-rank streams: canonical order, send slots dense in
	// record order, compute ops pre-scaled (or dropped under
	// SkipCompute — replay never branches on the flag again).
	streams := make([][]replayOp, ranks)
	var ops []replayOp // one backing array, sliced per rank
	for i, r := range t.Records {
		switch r.Kind {
		case KindCompute:
			if cfg.SkipCompute {
				continue
			}
			op := uint8(opCompute)
			if i+1 < len(t.Records) && t.Records[i+1].Rank == r.Rank && t.Records[i+1].Kind == KindSend {
				op = opComputeSend
			}
			ops = append(ops, replayOp{op: op,
				dur: units.Time(float64(r.Duration) * scale)})
		case KindSend:
			ops = append(ops, replayOp{op: opSend, peer: int32(r.Peer),
				tag: int32(r.Tag), aux: int32(e.nSends), size: r.Size})
			e.nSends++
		case KindRecv:
			ops = append(ops, replayOp{op: opRecv, peer: int32(r.Peer),
				tag: int32(r.Tag), aux: int32(r.Dep)})
		}
	}
	start := 0
	ri := 0
	for i, r := range t.Records {
		if !(r.Kind == KindCompute && cfg.SkipCompute) {
			ri++
		}
		if i+1 == len(t.Records) || t.Records[i+1].Rank != r.Rank {
			streams[r.Rank] = ops[start:ri:ri]
			start = ri
		}
	}

	if eng != nil {
		e.eng, e.borrowed = eng, true
	} else {
		e.eng = sim.NewEngine()
	}
	e.net = transport.New(e.eng, cfg.Fabric, cfg.Profile, cfg.Policy)
	e.inbox = make([]*sim.Mailbox[replayMsg], ranks)
	names := make([]string, ranks)
	for i := range e.inbox {
		names[i] = "replay-rank" + strconv.Itoa(i)
		e.inbox[i] = sim.NewMailbox[replayMsg](e.eng, names[i])
	}

	// One delivery event per send record, allocated once: the closure
	// reads the evaluator's per-evaluation observer state, so reuse
	// never re-captures anything.
	e.deliver = make([]func(), e.nSends)
	slot := 0
	for _, r := range t.Records {
		if r.Kind != KindSend {
			continue
		}
		s := slot
		slot++
		msg := replayMsg{src: r.Rank, tag: r.Tag, seq: r.Seq}
		box := e.inbox[r.Peer]
		e.deliver[s] = func() {
			if e.sends != nil {
				e.sends[s].Delivered = e.eng.Now()
			}
			box.Put(msg)
		}
	}

	// A dense rank-pair path table is only worth holding for realistic
	// rank counts; beyond the bound the walkers use the transport's own
	// pair-cache map.
	if ranks*ranks <= 1<<22 {
		e.pairs = make([]*transport.PairPath, ranks*ranks)
	}

	// One daemon walker proc per rank, spawned once: it walks the
	// rank's compiled stream, then parks until the next evaluation
	// wakes it. The spawn schedules each walker's first wake, so the
	// first Evaluate runs them exactly as one-shot Replay spawns ran.
	e.match = make([]replayMsg, ranks)
	e.matchFn = make([]func(replayMsg) bool, ranks)
	e.pendOp = make([]*replayOp, ranks)
	e.pendX = make([]*transport.Pending, ranks)
	e.chainFn = make([]func(), ranks)
	e.procs = make([]*sim.Proc, ranks)
	for rank := 0; rank < ranks; rank++ {
		rank := rank
		stream := streams[rank]
		e.matchFn[rank] = func(m replayMsg) bool {
			return m.src == e.match[rank].src && m.tag == e.match[rank].tag
		}
		// issueSend performs a send's issue-time work: the observer
		// stamp, the pair-path lookup and the chained-transfer start.
		// Called from the walker at the send op, or — for a fused
		// compute+send — from the compute's end event.
		issueSend := func(o *replayOp) *transport.Pending {
			if e.sends != nil {
				mt := &e.sends[o.aux]
				mt.SrcRank, mt.DstRank = rank, int(o.peer)
				mt.Tag, mt.Size = int(o.tag), o.size
				mt.SendStart = e.eng.Now()
			}
			src, dst := e.places[rank], e.places[o.peer]
			var pp *transport.PairPath
			if e.pairs == nil {
				pp = e.net.PairPath(src.Node, dst.Node)
			} else {
				pi := rank*len(e.places) + int(o.peer)
				pp = e.pairs[pi]
				if pp == nil {
					pp = e.net.PairPath(src.Node, dst.Node)
					e.pairs[pi] = pp
				}
			}
			return e.net.StartTransfer(e.procs[rank], pp, src, dst, o.size, e.deliver[o.aux])
		}
		e.chainFn[rank] = func() {
			e.pendX[rank] = issueSend(e.pendOp[rank])
		}
		box := e.inbox[rank]
		e.procs[rank] = e.eng.SpawnDaemon(names[rank], func(p *sim.Proc) {
			net, deliver, matchFn := e.net, e.deliver, e.matchFn[rank]
			for {
				// Per-evaluation state, hoisted out of the record loop.
				places, sends := e.places, e.sends
				for i := 0; i < len(stream); i++ {
					o := &stream[i]
					switch o.op {
					case opCompute:
						p.Sleep(o.dur)
					case opComputeSend:
						nxt := &stream[i+1]
						if nxt.size <= 0 || places[rank].Node == places[nxt.peer].Node {
							// Single-interval send paths end on the proc
							// itself: keep the unfused shape.
							p.Sleep(o.dur)
							continue
						}
						i++
						// Park once: the compute interval's end event
						// issues the send, the stream's completion wakes
						// us for the tail.
						e.pendOp[rank] = nxt
						e.eng.Schedule(o.dur, e.chainFn[rank])
						p.Park("compute+send")
						net.FinishTransfer(e.pendX[rank])
						if sends != nil {
							sends[nxt.aux].SendEnd = p.Now()
						}
					case opSend:
						src, dst := places[rank], places[o.peer]
						if src.Node == dst.Node || o.size <= 0 {
							if sends != nil {
								mt := &sends[o.aux]
								mt.SrcRank, mt.DstRank = rank, int(o.peer)
								mt.Tag, mt.Size = int(o.tag), o.size
								mt.SendStart = p.Now()
							}
							net.Transfer(p, src, dst, o.size, deliver[o.aux])
							if sends != nil {
								sends[o.aux].SendEnd = p.Now()
							}
							continue
						}
						x := issueSend(o)
						p.Park("transfer")
						net.FinishTransfer(x)
						if sends != nil {
							sends[o.aux].SendEnd = p.Now()
						}
					case opRecv:
						e.match[rank] = replayMsg{src: int(o.peer), tag: int(o.tag)}
						m := box.GetMatch(p, matchFn)
						if m.seq != int(o.aux) {
							// Validate guarantees FIFO matching; reaching
							// here is an engine-level bug, not a trace
							// error.
							e.fail(fmt.Errorf("trace: replay: rank %d recv from %d tag %d satisfied by send seq %d, dep says %d",
								rank, o.peer, o.tag, m.seq, o.aux))
						}
					}
				}
				e.res.RankFinish[rank] = p.Now()
				e.ranksDone++
				p.Park("replay-idle")
			}
		})
	}
	return e, nil
}

// fail records the first replay-invariant violation.
func (e *Evaluator) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

// Trace returns the trace the evaluator replays.
func (e *Evaluator) Trace() *Trace { return e.tr }

// Evaluate replays the trace under the given rank→node placement and
// returns the result. The config's Observe flags decide how much of it
// is populated: the makespan, rank finish times and transport counters
// always are; per-send timing and the link census only when requested —
// the optimizer's inner loop pays only for what it reads.
func (e *Evaluator) Evaluate(places []transport.Endpoint) (*ReplayResult, error) {
	if err := e.start(places); err != nil {
		return nil, err
	}
	if err := e.eng.Run(); err != nil {
		e.Close()
		return nil, fmt.Errorf("trace: replay %s: %w", e.tr.Meta.Name, err)
	}
	return e.finish()
}

// start is the pre-run half of Evaluate: it validates the placement and
// arms the pooled state so driving the engine — by Evaluate itself, or
// by the cluster a borrowed-engine evaluator's domain belongs to —
// performs the replay. finish collects the result afterwards.
func (e *Evaluator) start(places []transport.Endpoint) error {
	if e.closed {
		return fmt.Errorf("trace: replay: evaluator is closed")
	}
	if err := validatePlaces(e.tr, e.cfg.Fabric, places); err != nil {
		return err
	}
	if e.used {
		e.eng.Reset()
		e.net.Reset()
		clear(e.pairs) // the placement decides each rank pair's route
		// Wake the walkers in rank order: the same event sequence the
		// first evaluation's spawn wakes produced.
		for _, p := range e.procs {
			p.Wake()
		}
	}
	e.used = true
	e.places = places
	e.err = nil
	e.ranksDone = 0
	if e.cfg.Observe&ObserveSends != 0 {
		if e.sendsBuf == nil {
			e.sendsBuf = make([]MessageTiming, e.nSends)
		} else {
			clear(e.sendsBuf)
		}
		e.sends = e.sendsBuf
	} else {
		e.sends = nil
	}
	e.res = &ReplayResult{
		Name:       e.tr.Meta.Name,
		Ranks:      e.tr.Meta.Ranks,
		RankFinish: make([]units.Time, e.tr.Meta.Ranks),
	}
	return nil
}

// finish is the post-run half of Evaluate: it validates completion and
// packages the armed run's result.
func (e *Evaluator) finish() (*ReplayResult, error) {
	res := e.res
	if e.err != nil {
		return nil, e.err
	}
	if e.ranksDone != e.tr.Meta.Ranks {
		// A validated trace always completes; a stalled walker is an
		// engine-level bug, and the pooled state is unusable (daemons
		// are exempt from the engine's own deadlock detection).
		e.Close()
		return nil, fmt.Errorf("trace: replay %s: %d of %d ranks completed",
			e.tr.Meta.Name, e.ranksDone, e.tr.Meta.Ranks)
	}
	for _, f := range res.RankFinish {
		if f > res.Time {
			res.Time = f
		}
	}
	res.Messages = e.net.Messages()
	res.WireBytes = e.net.WireBytes()
	if e.sends != nil {
		res.Sends = make([]MessageTiming, e.nSends)
		copy(res.Sends, e.sends)
		e.sends = nil
	}
	if e.cfg.Observe&ObserveCensus != 0 {
		res.Congestion = e.net.Census(replayCensusTop)
	}
	res.EngineStats = e.eng.Stats()
	e.res = nil
	return res, nil
}

// Close releases the evaluator's engine and its walker procs. The
// evaluator is unusable afterwards; Close is idempotent.
func (e *Evaluator) Close() {
	if e.closed {
		return
	}
	e.closed = true
	if !e.borrowed {
		e.eng.Close()
	}
}

// validatePlaces checks a placement against the trace and fabric the
// way Replay always has: every rank placed, on a node inside the
// fabric, on a real Opteron core.
func validatePlaces(t *Trace, fab *fabric.System, places []transport.Endpoint) error {
	if len(places) != t.Meta.Ranks {
		return fmt.Errorf("trace: replay: %d placements for %d ranks", len(places), t.Meta.Ranks)
	}
	for r, pl := range places {
		// Bound the CU index directly rather than via GlobalID(), whose
		// CU*NodesPerCU product overflows int for absurd CU values and
		// would wrap negative past the fab.Nodes() comparison.
		if pl.Node.CU < 0 || pl.Node.CU >= fab.Nodes()/params.NodesPerCU ||
			pl.Node.Node < 0 || pl.Node.Node >= params.NodesPerCU {
			return fmt.Errorf("trace: replay: rank %d placed on %v outside the %d-node fabric",
				r, pl.Node, fab.Nodes())
		}
		if pl.Core < 0 || pl.Core > 3 {
			return fmt.Errorf("trace: replay: rank %d on core %d (want 0..3)", r, pl.Core)
		}
	}
	return nil
}
