package trace

import (
	"reflect"
	"testing"

	"roadrunner/internal/fabric"
	"roadrunner/internal/ib"
	"roadrunner/internal/transport"
	"roadrunner/internal/units"
)

// evalPlacements builds three structurally different placements over a
// one-CU fabric for an n-rank trace: one rank per node, stride-8 across
// line crossbars, and four ranks per node.
func evalPlacements(fab *fabric.System, ranks int) [][]transport.Endpoint {
	block := make([]transport.Endpoint, ranks)
	strided := make([]transport.Endpoint, ranks)
	packed := make([]transport.Endpoint, ranks)
	for i := 0; i < ranks; i++ {
		block[i] = transport.Endpoint{Node: fabric.FromGlobal(i), Core: 1}
		strided[i] = transport.Endpoint{Node: fabric.FromGlobal((i * 8) % fab.Nodes()), Core: 1}
		packed[i] = transport.Endpoint{Node: fabric.FromGlobal(i / 4), Core: i % 4}
	}
	return [][]transport.Endpoint{block, strided, packed}
}

// TestEvaluatorMatchesFreshReplay is the pooling contract: a sequence of
// Evaluate calls on one Evaluator produces results byte-identical to a
// fresh one-shot Replay per placement — same makespans, same per-send
// timings, same census, same engine stats — under both the congested
// and the infinite-capacity policy. Nothing of one evaluation may leak
// into the next.
func TestEvaluatorMatchesFreshReplay(t *testing.T) {
	fab := fabric.NewScaled(1)
	tr := meshTrace(t, 16, 96*units.KB)
	placements := evalPlacements(fab, 16)
	for _, pol := range []transport.Policy{transport.Congested(), transport.InfiniteCapacity()} {
		cfg := ReplayConfig{Fabric: fab, Profile: ib.OpenMPI(), Policy: pol, Observe: ObserveAll}
		ev, err := NewEvaluator(tr, cfg)
		if err != nil {
			t.Fatalf("evaluator: %v", err)
		}
		for i, places := range placements {
			got, err := ev.Evaluate(places)
			if err != nil {
				t.Fatalf("pooled evaluate %d: %v", i, err)
			}
			one := cfg
			one.Places = places
			want, err := Replay(tr, one)
			if err != nil {
				t.Fatalf("fresh replay %d: %v", i, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("policy %+v placement %d: pooled result differs from fresh replay\n  pooled: %+v\n  fresh:  %+v",
					pol, i, got, want)
			}
		}
		// Revisit the first placement: earlier evaluations of other
		// placements (different link sets, different pair routes) must
		// not have contaminated the pooled state.
		got, err := ev.Evaluate(placements[0])
		if err != nil {
			t.Fatalf("revisit evaluate: %v", err)
		}
		one := cfg
		one.Places = placements[0]
		want, err := Replay(tr, one)
		if err != nil {
			t.Fatalf("revisit fresh replay: %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("policy %+v: revisited placement diverged after pooled reuse", pol)
		}
		ev.Close()
	}
}

// TestEvaluatorMakespanOnly: with no observers the result still carries
// the makespan, rank finishes and transport counters — equal to the
// fully observed run — but no per-send timing and no census.
func TestEvaluatorMakespanOnly(t *testing.T) {
	fab := fabric.NewScaled(1)
	tr := meshTrace(t, 8, 64*units.KB)
	places := evalPlacements(fab, 8)[0]
	full, err := Replay(tr, ReplayConfig{
		Fabric: fab, Profile: ib.OpenMPI(), Places: places,
		Policy: transport.Congested(), Observe: ObserveAll,
	})
	if err != nil {
		t.Fatal(err)
	}
	bare, err := Replay(tr, ReplayConfig{
		Fabric: fab, Profile: ib.OpenMPI(), Places: places,
		Policy: transport.Congested(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if bare.Time != full.Time || !reflect.DeepEqual(bare.RankFinish, full.RankFinish) {
		t.Errorf("makespan-only timing diverged: %v vs %v", bare.Time, full.Time)
	}
	if bare.Messages != full.Messages || bare.WireBytes != full.WireBytes {
		t.Errorf("counters diverged: %d/%v vs %d/%v",
			bare.Messages, bare.WireBytes, full.Messages, full.WireBytes)
	}
	if bare.EngineStats != full.EngineStats {
		t.Errorf("engine stats diverged: %+v vs %+v", bare.EngineStats, full.EngineStats)
	}
	if bare.Sends != nil || bare.Congestion != nil {
		t.Errorf("unobserved replay populated observers: sends %d, census %v",
			len(bare.Sends), bare.Congestion)
	}
	if len(full.Sends) == 0 || full.Congestion == nil {
		t.Fatalf("observed replay missing observers")
	}
}

// TestEvaluatorRejectsBadPlacement: placement validation happens per
// Evaluate call, and a rejected placement leaves the evaluator usable.
func TestEvaluatorRejectsBadPlacement(t *testing.T) {
	fab := fabric.NewScaled(1)
	tr := meshTrace(t, 4, 8*units.KB)
	ev, err := NewEvaluator(tr, ReplayConfig{Fabric: fab, Profile: ib.OpenMPI(), Policy: transport.Congested()})
	if err != nil {
		t.Fatal(err)
	}
	defer ev.Close()
	good := evalPlacements(fab, 4)[0]
	if _, err := ev.Evaluate(good[:2]); err == nil {
		t.Error("short placement accepted")
	}
	bad := append([]transport.Endpoint(nil), good...)
	bad[1].Core = 9
	if _, err := ev.Evaluate(bad); err == nil {
		t.Error("bad core accepted")
	}
	bad[1] = transport.Endpoint{Node: fabric.NodeID{CU: 5, Node: 0}, Core: 1}
	if _, err := ev.Evaluate(bad); err == nil {
		t.Error("out-of-fabric node accepted")
	}
	if _, err := ev.Evaluate(good); err != nil {
		t.Errorf("evaluator unusable after rejected placements: %v", err)
	}
	ev.Close()
	if _, err := ev.Evaluate(good); err == nil {
		t.Error("closed evaluator accepted an evaluation")
	}
}
