package trace

import (
	"bytes"
	"strings"
	"testing"

	"roadrunner/internal/fabric"
	"roadrunner/internal/ib"
	"roadrunner/internal/transport"
)

// FuzzDecode feeds arbitrary bytes through the full parse→validate→
// replay pipeline. The contract under test: malformed input returns an
// error — it never panics, and whatever Decode accepts replays without
// deadlocking the engine (Validate's acyclicity check is exactly the
// no-deadlock guarantee). Additional seed corpus entries live in
// testdata/fuzz/FuzzDecode.
func FuzzDecode(f *testing.F) {
	valid := func(tr *Trace) []byte {
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	rec := NewRecorder("seed", "fuzz", 2)
	rec.Compute(0, 5, 5)
	rec.Send(0, 1, 3, 64, 6)
	rec.Recv(1, 0, 3, 64, 9)
	tr, err := rec.Trace()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid(tr))

	lines := strings.SplitAfter(string(valid(tr)), "\n")
	f.Add([]byte(strings.Join(lines[:len(lines)-2], ""))) // truncated
	f.Add([]byte(lines[0]))                               // header only
	f.Add([]byte("not json\n"))
	f.Add([]byte(`{"format":"roadrunner-trace","version":1,"name":"x","app":"y","ranks":2,"records":1}` + "\n" +
		`{"rank":0,"seq":0,"kind":"recv","peer":1,"tag":0,"size":8,"dur":0,"at":0,"dep":0}` + "\n")) // orphan recv
	f.Add([]byte(`{"format":"roadrunner-trace","version":1,"name":"x","app":"y","ranks":1,"records":1}` + "\n" +
		`{"rank":0,"seq":0,"kind":"compute","peer":-1,"tag":0,"size":0,"dur":-5,"at":0,"dep":-1}` + "\n")) // negative duration
	f.Add([]byte(`{"format":"roadrunner-trace","version":1,"name":"x","app":"y","ranks":4611686018427387904,"records":0}` + "\n")) // absurd rank count

	fab := fabric.NewScaled(1)
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // malformed input must error, and did
		}
		// Decode re-validated everything; a replay must therefore finish
		// (the engine detects any residual blocking as a DeadlockError,
		// which would mean Validate's acyclicity guarantee is broken).
		if tr.Meta.Ranks > 64 || len(tr.Records) > 4096 {
			return // keep the fuzz loop fast; replay size is not the contract
		}
		places := make([]transport.Endpoint, tr.Meta.Ranks)
		for i := range places {
			places[i] = transport.Endpoint{Node: fabric.FromGlobal(i % fab.Nodes()), Core: i % 4}
		}
		res, err := Replay(tr, ReplayConfig{
			Fabric:  fab,
			Profile: ib.OpenMPI(),
			Places:  places,
			Policy:  transport.Congested(),
		})
		if err != nil {
			t.Fatalf("validated trace failed to replay: %v", err)
		}
		if res == nil || len(res.RankFinish) != tr.Meta.Ranks {
			t.Fatalf("replay result malformed: %+v", res)
		}
	})
}
