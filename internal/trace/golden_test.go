package trace_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"roadrunner/internal/cml"
	"roadrunner/internal/fabric"
	"roadrunner/internal/ib"
	"roadrunner/internal/sweep3d"
	"roadrunner/internal/trace"
	"roadrunner/internal/transport"
)

var update = flag.Bool("update", false, "rewrite the golden trace files")

// goldenPath is the pinned capture of a tiny Sweep3D run. Any change to
// the capture hook, the recorder, the canonical ordering or the JSONL
// encoding shows up as a diff against this file — capture regressions
// are caught by `git diff`, not by silent drift.
const goldenPath = "testdata/sweep3d_2x2.trace.jsonl"

// goldenCapture reproduces the golden file's capture exactly.
func goldenCapture(t *testing.T) *trace.Trace {
	t.Helper()
	cfg := sweep3d.Config{I: 2, J: 2, K: 4, MK: 2, Angles: 2}
	_, tr, err := sweep3d.CaptureDES(cfg, 2, 2, cml.CurrentSoftware())
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	return tr
}

func TestGoldenSweep3DTrace(t *testing.T) {
	tr := goldenCapture(t)
	var buf bytes.Buffer
	if err := trace.Encode(&buf, tr); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, buf.Len())
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/trace -run TestGolden -update`): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("captured trace drifted from %s (%d vs %d bytes); if the change is intended, rerun with -update",
			goldenPath, buf.Len(), len(want))
	}
}

// TestGoldenTraceReplays guards the full path: the checked-in file
// itself must decode, validate and replay.
func TestGoldenTraceReplays(t *testing.T) {
	tr, err := trace.Load(goldenPath)
	if err != nil {
		t.Fatalf("load golden: %v", err)
	}
	s := tr.Stats()
	if s.Ranks != 4 || s.Sends != s.Recvs || s.Sends == 0 {
		t.Fatalf("unexpected golden shape: %+v", s)
	}
	fab := fabric.NewScaled(1)
	places := make([]transport.Endpoint, tr.Meta.Ranks)
	for i := range places {
		places[i] = transport.Endpoint{Node: fabric.FromGlobal(i), Core: 1}
	}
	res, err := trace.Replay(tr, trace.ReplayConfig{
		Fabric:  fab,
		Profile: ib.OpenMPI(),
		Places:  places,
		Policy:  transport.Congested(),
	})
	if err != nil {
		t.Fatalf("replay golden: %v", err)
	}
	if res.Time <= 0 || int(res.Messages) != s.Sends {
		t.Fatalf("golden replay: %+v", res)
	}
}
