package trace

import (
	"errors"
	"sync"
	"sync/atomic"

	"roadrunner/internal/transport"
)

// ErrPoolClosed is returned by Get after Close: the pool's evaluators
// are gone, and a caller holding a stale pool pointer (for example one
// the serving layer's bounded cache evicted) should look up or build a
// fresh pool instead.
var ErrPoolClosed = errors.New("trace: evaluator pool is closed")

// EvaluatorPool is a concurrency-safe checkout/return pool of
// Evaluators for one (trace, replay config) pair. An Evaluator is
// single-goroutine by contract, so concurrent callers — the serving
// layer's request workers, most prominently — each check one out with
// Get, run any number of Evaluate calls on it, and hand it back with
// Put. The pool keeps up to maxIdle warm evaluators between checkouts;
// a Get that finds the free list empty builds a fresh one, and a Put
// beyond the idle bound closes the returned evaluator instead of
// retaining it. Because Evaluate on a reused evaluator is pinned
// byte-identical to a fresh Replay (TestEvaluatorMatchesFreshReplay),
// checking out a warm evaluator versus building a cold one is
// observable only in wall clock, never in results.
type EvaluatorPool struct {
	tr  *Trace
	cfg ReplayConfig

	mu      sync.Mutex
	free    []*Evaluator
	maxIdle int
	closed  bool

	built  int64 // evaluators constructed over the pool's lifetime
	reused int64 // checkouts served from the warm free list
}

// NewEvaluatorPool validates the trace and config by building the first
// evaluator eagerly (so a bad pair fails here, not on some later
// request) and parks it on the free list. maxIdle bounds the warm
// evaluators retained between checkouts; values below 1 are raised
// to 1.
func NewEvaluatorPool(t *Trace, cfg ReplayConfig, maxIdle int) (*EvaluatorPool, error) {
	if maxIdle < 1 {
		maxIdle = 1
	}
	first, err := NewEvaluator(t, cfg)
	if err != nil {
		return nil, err
	}
	return &EvaluatorPool{
		tr:      t,
		cfg:     cfg,
		free:    []*Evaluator{first},
		maxIdle: maxIdle,
		built:   1,
	}, nil
}

// Trace returns the trace the pool's evaluators replay.
func (p *EvaluatorPool) Trace() *Trace { return p.tr }

// Get checks an evaluator out of the pool, building a fresh one when no
// warm evaluator is free. The caller owns it exclusively until Put.
func (p *EvaluatorPool) Get() (*Evaluator, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	if n := len(p.free); n > 0 {
		e := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.reused++
		p.mu.Unlock()
		return e, nil
	}
	p.built++
	p.mu.Unlock()
	// Built outside the lock: evaluator construction is O(records) and
	// must not serialize other checkouts.
	return NewEvaluator(p.tr, p.cfg)
}

// Put returns a checked-out evaluator to the free list. Evaluators
// beyond the idle bound, evaluators whose pooled state became unusable
// (a failed Evaluate closes them), and returns after Close are closed
// instead of retained. Put(nil) is a no-op.
func (p *EvaluatorPool) Put(e *Evaluator) {
	if e == nil {
		return
	}
	p.mu.Lock()
	if p.closed || e.closed || len(p.free) >= p.maxIdle {
		p.mu.Unlock()
		e.Close()
		return
	}
	p.free = append(p.free, e)
	p.mu.Unlock()
}

// EvaluateMany replays every placement and returns the results in
// input order. With workers > 1 the placements spread across up to that
// many checked-out evaluators running concurrently — the pool's
// opt-in parallel knob; workers <= 1 is the serial default, one warm
// evaluator walking the placements in order, exactly the pre-pool loop.
// Because Evaluate on any pooled evaluator is pinned byte-identical to
// a fresh Replay of the same placement, which evaluator handles which
// placement is observable only in wall clock: the returned results are
// identical at every worker count. The first evaluation error aborts
// the batch.
func (p *EvaluatorPool) EvaluateMany(placements [][]transport.Endpoint, workers int) ([]*ReplayResult, error) {
	out := make([]*ReplayResult, len(placements))
	if workers > len(placements) {
		workers = len(placements)
	}
	if workers <= 1 {
		ev, err := p.Get()
		if err != nil {
			return nil, err
		}
		defer p.Put(ev)
		for i, places := range placements {
			r, err := ev.Evaluate(places)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		errOnce sync.Once
		firstE  error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ev, err := p.Get()
			if err != nil {
				errOnce.Do(func() { firstE = err })
				return
			}
			defer p.Put(ev)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(placements) {
					return
				}
				r, err := ev.Evaluate(placements[i])
				if err != nil {
					errOnce.Do(func() { firstE = err })
					return
				}
				out[i] = r
			}
		}()
	}
	wg.Wait()
	if firstE != nil {
		return nil, firstE
	}
	return out, nil
}

// Stats reports how many evaluators the pool built and how many
// checkouts it served warm.
func (p *EvaluatorPool) Stats() (built, reused int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.built, p.reused
}

// Close closes every idle evaluator and marks the pool closed: further
// Gets fail, and evaluators still checked out are closed as they come
// back through Put. Close is idempotent.
func (p *EvaluatorPool) Close() {
	p.mu.Lock()
	free := p.free
	p.free = nil
	p.closed = true
	p.mu.Unlock()
	for _, e := range free {
		e.Close()
	}
}
