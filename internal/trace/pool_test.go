package trace

import (
	"errors"
	"sync"
	"testing"

	"roadrunner/internal/fabric"
	"roadrunner/internal/ib"
	"roadrunner/internal/transport"
	"roadrunner/internal/units"
)

// TestEvaluatorPoolCheckoutReturn pins the pool contract: a warm
// checkout returns results byte-identical to a cold evaluator, the free
// list is bounded by maxIdle, and concurrent checkouts each own their
// evaluator exclusively (the race detector would catch sharing).
func TestEvaluatorPoolCheckoutReturn(t *testing.T) {
	fab := fabric.NewScaled(1)
	tr := meshTrace(t, 16, 96*units.KB)
	cfg := ReplayConfig{Fabric: fab, Profile: ib.OpenMPI(), Policy: transport.Congested()}
	places := evalPlacements(fab, 16)

	pool, err := NewEvaluatorPool(tr, cfg, 2)
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	defer pool.Close()

	want, err := Replay(tr, ReplayConfig{Fabric: fab, Profile: ib.OpenMPI(),
		Policy: transport.Congested(), Places: places[0]})
	if err != nil {
		t.Fatalf("fresh replay: %v", err)
	}

	// Serial checkout/return cycles hit the warm evaluator and agree
	// with the fresh replay.
	for i := 0; i < 3; i++ {
		e, err := pool.Get()
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		got, err := e.Evaluate(places[0])
		if err != nil {
			t.Fatalf("evaluate %d: %v", i, err)
		}
		if got.Time != want.Time {
			t.Errorf("checkout %d: makespan %v, fresh replay %v", i, got.Time, want.Time)
		}
		pool.Put(e)
	}
	if built, reused := pool.Stats(); built != 1 || reused != 3 {
		t.Errorf("serial cycles: built %d reused %d, want 1 and 3", built, reused)
	}

	// Concurrent checkouts: every worker gets an exclusive evaluator
	// and every result matches.
	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	times := make([]units.Time, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e, err := pool.Get()
			if err != nil {
				errs[w] = err
				return
			}
			defer pool.Put(e)
			res, err := e.Evaluate(places[0])
			if err != nil {
				errs[w] = err
				return
			}
			times[w] = res.Time
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if times[w] != want.Time {
			t.Errorf("worker %d: makespan %v, want %v", w, times[w], want.Time)
		}
	}

	// The free list is capped at maxIdle; surplus returns were closed,
	// not leaked into the pool.
	e1, _ := pool.Get()
	e2, _ := pool.Get()
	e3, err := pool.Get()
	if err != nil {
		t.Fatalf("get past idle bound: %v", err)
	}
	pool.Put(e1)
	pool.Put(e2)
	pool.Put(e3)
	pool.mu.Lock()
	idle := len(pool.free)
	pool.mu.Unlock()
	if idle != 2 {
		t.Errorf("idle evaluators after returning 3 with maxIdle 2: %d", idle)
	}
}

// TestEvaluatorPoolClose pins the shutdown contract: Get fails after
// Close, and a straggler returned afterwards is closed, not retained.
func TestEvaluatorPoolClose(t *testing.T) {
	fab := fabric.NewScaled(1)
	tr := meshTrace(t, 4, 4*units.KB)
	cfg := ReplayConfig{Fabric: fab, Profile: ib.OpenMPI()}
	pool, err := NewEvaluatorPool(tr, cfg, 4)
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	straggler, err := pool.Get()
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	pool.Close()
	if _, err := pool.Get(); err == nil {
		t.Error("Get after Close succeeded")
	}
	pool.Put(straggler)
	if !straggler.closed {
		t.Error("straggler returned after Close was not closed")
	}
	pool.Close() // idempotent
}

// TestEvaluatorPoolClosedRetry pins the checkout-retry contract the
// serving layer builds on (serve.checkout): Get on a closed pool fails
// with an error that is errors.Is-identifiable as ErrPoolClosed — not
// some generic failure — so a caller holding a stale pool pointer can
// distinguish "this pool was evicted, build a fresh one and retry"
// from a genuinely broken request.
func TestEvaluatorPoolClosedRetry(t *testing.T) {
	fab := fabric.NewScaled(1)
	tr := meshTrace(t, 4, 4*units.KB)
	cfg := ReplayConfig{Fabric: fab, Profile: ib.OpenMPI()}

	stale, err := NewEvaluatorPool(tr, cfg, 2)
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	stale.Close()
	if _, err := stale.Get(); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Get on closed pool: %v, want errors.Is ErrPoolClosed", err)
	}

	// The retry loop itself: each attempt that lands on a closed pool
	// rebuilds; a fresh pool satisfies the checkout on the next attempt.
	pools := []*EvaluatorPool{stale}
	lookup := func() (*EvaluatorPool, error) {
		return pools[len(pools)-1], nil
	}
	rebuild := func() error {
		p, err := NewEvaluatorPool(tr, cfg, 2)
		if err != nil {
			return err
		}
		pools = append(pools, p)
		return nil
	}
	var ev *Evaluator
	attempts := 0
	for {
		attempts++
		p, err := lookup()
		if err != nil {
			t.Fatalf("lookup: %v", err)
		}
		ev, err = p.Get()
		if err == nil {
			defer p.Put(ev)
			break
		}
		if !errors.Is(err, ErrPoolClosed) || attempts >= 8 {
			t.Fatalf("checkout attempt %d: %v", attempts, err)
		}
		if err := rebuild(); err != nil {
			t.Fatalf("rebuild: %v", err)
		}
	}
	if attempts != 2 {
		t.Errorf("checkout took %d attempts, want 2 (stale miss + fresh hit)", attempts)
	}
	places := evalPlacements(fab, 4)
	if _, err := ev.Evaluate(places[0]); err != nil {
		t.Fatalf("evaluate on retried checkout: %v", err)
	}
	for _, p := range pools {
		p.Close()
	}

	// A pool closed concurrently with checkouts never hands out a dead
	// evaluator: every Get either succeeds with a usable evaluator or
	// fails identifiably as ErrPoolClosed.
	race, err := NewEvaluatorPool(tr, cfg, 4)
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	const workers = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < 4; i++ {
				e, err := race.Get()
				if err != nil {
					if !errors.Is(err, ErrPoolClosed) {
						errs[w] = err
					}
					return
				}
				if _, err := e.Evaluate(places[0]); err != nil {
					errs[w] = err
					return
				}
				race.Put(e)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		race.Close()
	}()
	close(start)
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Errorf("worker %d under concurrent close: %v", w, err)
		}
	}
}
