package trace

import (
	"fmt"
	"sort"

	"roadrunner/internal/units"
)

// Recorder accumulates per-rank record streams during a capture run.
// Capture hooks (e.g. sweep3d.CaptureDES) call Compute/Send/Recv from
// inside the application's DES procs — the engine interleaves procs one
// at a time, so no locking is needed — and Trace() assembles the
// canonical trace: sequence numbers from per-rank program order, recv
// dependencies from FIFO matching on each (src, dst, tag) channel, and a
// full Validate before anything is returned.
type Recorder struct {
	meta    Meta
	perRank [][]Record
}

// NewRecorder starts a capture over the given number of ranks.
func NewRecorder(name, app string, ranks int) *Recorder {
	if ranks < 1 {
		panic(fmt.Sprintf("trace: recorder over %d ranks", ranks))
	}
	return &Recorder{
		meta:    Meta{Name: name, App: app, Ranks: ranks},
		perRank: make([][]Record, ranks),
	}
}

// SetAttr records a capture parameter in the trace metadata.
func (rec *Recorder) SetAttr(key, value string) {
	if rec.meta.Attrs == nil {
		rec.meta.Attrs = make(map[string]string)
	}
	rec.meta.Attrs[key] = value
}

// append adds a record to the rank's stream, assigning its sequence
// number.
func (rec *Recorder) append(r Record) {
	if r.Rank < 0 || r.Rank >= rec.meta.Ranks {
		panic(fmt.Sprintf("trace: record for rank %d of %d", r.Rank, rec.meta.Ranks))
	}
	r.Seq = len(rec.perRank[r.Rank])
	rec.perRank[r.Rank] = append(rec.perRank[r.Rank], r)
}

// Compute records local work of the given duration, completed at the
// capture-run instant at.
func (rec *Recorder) Compute(rank int, d, at units.Time) {
	rec.append(Record{Rank: rank, Kind: KindCompute, Peer: NoPeer, Duration: d, At: at, Dep: NoDep})
}

// Send records a blocking send of size bytes to dst.
func (rec *Recorder) Send(rank, dst, tag int, size units.Size, at units.Time) {
	rec.append(Record{Rank: rank, Kind: KindSend, Peer: dst, Tag: tag, Size: size, At: at, Dep: NoDep})
}

// Recv records the receipt of the matching send from src. The
// dependency link is resolved by Trace() via FIFO matching, so capture
// hooks only report what the application saw.
func (rec *Recorder) Recv(rank, src, tag int, size units.Size, at units.Time) {
	rec.append(Record{Rank: rank, Kind: KindRecv, Peer: src, Tag: tag, Size: size, At: at, Dep: NoDep})
}

// Trace assembles and validates the captured trace. The recorder can
// keep accumulating afterwards; the returned trace is a snapshot.
func (rec *Recorder) Trace() (*Trace, error) {
	n := 0
	for _, rs := range rec.perRank {
		n += len(rs)
	}
	t := &Trace{Meta: rec.meta, Records: make([]Record, 0, n)}
	if attrs := rec.meta.Attrs; attrs != nil {
		t.Meta.Attrs = make(map[string]string, len(attrs))
		for k, v := range attrs {
			t.Meta.Attrs[k] = v
		}
	}
	for _, rs := range rec.perRank {
		t.Records = append(t.Records, rs...)
	}
	if err := resolveDeps(t); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("trace: capture produced an invalid trace: %w", err)
	}
	return t, nil
}

// resolveDeps fills each recv's Dep with the Seq of the matching send,
// pairing the k-th recv on a channel with the k-th send. Sends are
// matched in the sender's program order and recvs in the receiver's —
// the FIFO channel discipline the replay engine (and MPI message
// ordering between a rank pair with one tag) guarantees.
func resolveDeps(t *Trace) error {
	sendSeqs := make(map[chanKey][]int)
	for _, r := range t.Records {
		if r.Kind == KindSend {
			k := chanKey{src: r.Rank, dst: r.Peer, tag: r.Tag}
			sendSeqs[k] = append(sendSeqs[k], r.Seq)
		}
	}
	// Per-channel send order is the sender's seq order; records are
	// appended rank-major here, so each channel's list is already
	// ascending. Sort anyway to keep the invariant independent of the
	// append order.
	for _, seqs := range sendSeqs {
		sort.Ints(seqs)
	}
	next := make(map[chanKey]int)
	for i := range t.Records {
		r := &t.Records[i]
		if r.Kind != KindRecv {
			continue
		}
		k := chanKey{src: r.Peer, dst: r.Rank, tag: r.Tag}
		j := next[k]
		if j >= len(sendSeqs[k]) {
			return fmt.Errorf("trace: capture: %v has no matching send", *r)
		}
		r.Dep = sendSeqs[k][j]
		next[k] = j + 1
	}
	return nil
}
