package trace

import (
	"fmt"
	"math"

	"roadrunner/internal/fabric"
	"roadrunner/internal/ib"
	"roadrunner/internal/sim"
	"roadrunner/internal/transport"
	"roadrunner/internal/units"
)

// Observe selects which of a replay's expensive observers run. The zero
// value is makespan-only: the result carries the completion times, the
// transport counters and the engine stats, but no per-send timing and
// no link census — the configuration the placement optimizer's inner
// loop runs, where building and sorting a census per candidate would be
// pure waste. Reporting callers opt in to what they read.
type Observe uint8

const (
	// ObserveSends records per-send MessageTiming (issue, sender-visible
	// completion, delivery) for every send record.
	ObserveSends Observe = 1 << iota
	// ObserveCensus builds the link-contention census after the replay
	// (congestion-policy runs only; off-policy nets have no link state).
	ObserveCensus

	// ObserveAll enables every observer: the reporting configuration.
	ObserveAll = ObserveSends | ObserveCensus
)

// ReplayConfig places a trace's ranks on the machine and selects the
// transport models the replay runs over.
type ReplayConfig struct {
	Fabric  *fabric.System
	Profile ib.Profile
	// Places maps rank → (node, core); it must cover every trace rank.
	// Two ranks on one node exchange over the shared-memory path, so
	// placement density changes both hop profiles and wire traffic.
	// (Evaluators ignore this field: the placement is the argument of
	// each Evaluate call.)
	Places []transport.Endpoint
	// Policy is the transport's congestion model: transport.Congested()
	// for wormhole link channels, transport.InfiniteCapacity() for the
	// routed-but-unthrottled fabric, the zero value for the unrouted
	// legacy path (byte-identical timing to InfiniteCapacity).
	Policy transport.Policy
	// ComputeScale multiplies compute-record durations (0 means 1.0):
	// replay the same schedule on a faster or slower processor model
	// without recapturing. Negative and non-finite values are rejected.
	ComputeScale float64
	// SkipCompute drops compute records entirely: the bare communication
	// schedule, for isolating placement and congestion effects.
	SkipCompute bool
	// Observe opts in to the expensive observers (per-send timing, link
	// census). The zero value is makespan-only.
	Observe Observe
}

// computeScale normalizes and validates the config's compute scaling.
func computeScale(scale float64) (float64, error) {
	if scale == 0 {
		return 1, nil
	}
	if math.IsNaN(scale) || math.IsInf(scale, 0) {
		return 0, fmt.Errorf("trace: replay: non-finite compute scale %g", scale)
	}
	if scale < 0 {
		return 0, fmt.Errorf("trace: replay: negative compute scale %g", scale)
	}
	return scale, nil
}

// MessageTiming is one send record's replay timing.
type MessageTiming struct {
	SrcRank, DstRank, Tag int
	Size                  units.Size
	// SendStart is when the sender issued the transfer, SendEnd when the
	// blocking send returned (software overheads, rendezvous, link
	// admission and the HCA stream all charged), Delivered when the
	// payload reached the receiver's queue after the fabric traversal.
	SendStart, SendEnd, Delivered units.Time
}

// String renders the timing on one line.
func (m MessageTiming) String() string {
	return fmt.Sprintf("%d->%d tag %d %v: start %v send %v delivered %v",
		m.SrcRank, m.DstRank, m.Tag, m.Size,
		m.SendStart, m.SendEnd-m.SendStart, m.Delivered)
}

// ReplayResult is the outcome of replaying one trace.
type ReplayResult struct {
	Name  string
	Ranks int
	// Time is the makespan: the completion time of the slowest rank.
	Time units.Time
	// RankFinish is each rank's completion time.
	RankFinish []units.Time
	// Sends holds per-message timing, one entry per send record, in
	// canonical record order (nil unless ObserveSends is set).
	Sends []MessageTiming
	// Messages and WireBytes are the transport's counters (WireBytes
	// excludes intra-node shared-memory messages, so it varies with
	// placement density).
	Messages  int64
	WireBytes units.Size
	// Congestion is the link-contention census (nil unless
	// ObserveCensus is set and the replay ran with a congestion
	// policy).
	Congestion *transport.Census
	// EngineStats snapshots the DES engine at completion.
	EngineStats sim.Stats
}

// replayMsg is one in-flight payload during replay.
type replayMsg struct {
	src, tag, seq int
}

// replayCensusTop is how many contended links a ReplayResult's census
// retains.
const replayCensusTop = 10

// Replay executes the trace over the transport: one sim proc per rank
// walks the rank's stream in order — compute sleeps, sends drive
// transport.Net.Transfer, recvs block on the matching payload — so
// cross-rank dependencies resolve exactly as the application's own
// message ordering would, under whatever placement and congestion policy
// the config selects. The trace is validated first; a valid trace
// cannot deadlock the engine.
//
// Replay is the one-shot path: it builds an Evaluator, runs the
// config's placement once and tears the evaluator down. Callers
// evaluating many placements of one trace should hold an Evaluator
// instead and amortize the setup.
func Replay(t *Trace, cfg ReplayConfig) (*ReplayResult, error) {
	e, err := NewEvaluator(t, cfg)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	return e.Evaluate(cfg.Places)
}
