package trace

import (
	"fmt"

	"roadrunner/internal/fabric"
	"roadrunner/internal/ib"
	"roadrunner/internal/params"
	"roadrunner/internal/sim"
	"roadrunner/internal/transport"
	"roadrunner/internal/units"
)

// ReplayConfig places a trace's ranks on the machine and selects the
// transport models the replay runs over.
type ReplayConfig struct {
	Fabric  *fabric.System
	Profile ib.Profile
	// Places maps rank → (node, core); it must cover every trace rank.
	// Two ranks on one node exchange over the shared-memory path, so
	// placement density changes both hop profiles and wire traffic.
	Places []transport.Endpoint
	// Policy is the transport's congestion model: transport.Congested()
	// for wormhole link channels, transport.InfiniteCapacity() for the
	// routed-but-unthrottled fabric, the zero value for the unrouted
	// legacy path (byte-identical timing to InfiniteCapacity).
	Policy transport.Policy
	// ComputeScale multiplies compute-record durations (0 means 1.0):
	// replay the same schedule on a faster or slower processor model
	// without recapturing.
	ComputeScale float64
	// SkipCompute drops compute records entirely: the bare communication
	// schedule, for isolating placement and congestion effects.
	SkipCompute bool
}

// MessageTiming is one send record's replay timing.
type MessageTiming struct {
	SrcRank, DstRank, Tag int
	Size                  units.Size
	// SendStart is when the sender issued the transfer, SendEnd when the
	// blocking send returned (software overheads, rendezvous, link
	// admission and the HCA stream all charged), Delivered when the
	// payload reached the receiver's queue after the fabric traversal.
	SendStart, SendEnd, Delivered units.Time
}

// String renders the timing on one line.
func (m MessageTiming) String() string {
	return fmt.Sprintf("%d->%d tag %d %v: start %v send %v delivered %v",
		m.SrcRank, m.DstRank, m.Tag, m.Size,
		m.SendStart, m.SendEnd-m.SendStart, m.Delivered)
}

// ReplayResult is the outcome of replaying one trace.
type ReplayResult struct {
	Name  string
	Ranks int
	// Time is the makespan: the completion time of the slowest rank.
	Time units.Time
	// RankFinish is each rank's completion time.
	RankFinish []units.Time
	// Sends holds per-message timing, one entry per send record, in
	// canonical record order.
	Sends []MessageTiming
	// Messages and WireBytes are the transport's counters (WireBytes
	// excludes intra-node shared-memory messages, so it varies with
	// placement density).
	Messages  int64
	WireBytes units.Size
	// Congestion is the link-contention census (nil when the replay ran
	// with the congestion policy off).
	Congestion *transport.Census
	// EngineStats snapshots the DES engine at completion.
	EngineStats sim.Stats
}

// replayMsg is one in-flight payload during replay.
type replayMsg struct {
	src, tag, seq int
}

// replayCensusTop is how many contended links a ReplayResult's census
// retains.
const replayCensusTop = 10

// Replay executes the trace over the transport: one sim proc per rank
// walks the rank's stream in order — compute sleeps, sends drive
// transport.Net.Transfer, recvs block on the matching payload — so
// cross-rank dependencies resolve exactly as the application's own
// message ordering would, under whatever placement and congestion policy
// the config selects. The trace is validated first; a valid trace
// cannot deadlock the engine.
func Replay(t *Trace, cfg ReplayConfig) (*ReplayResult, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if cfg.Fabric == nil {
		return nil, fmt.Errorf("trace: replay: nil fabric")
	}
	if len(cfg.Places) != t.Meta.Ranks {
		return nil, fmt.Errorf("trace: replay: %d placements for %d ranks", len(cfg.Places), t.Meta.Ranks)
	}
	for r, pl := range cfg.Places {
		if pl.Node.CU < 0 || pl.Node.Node < 0 || pl.Node.Node >= params.NodesPerCU ||
			pl.Node.GlobalID() >= cfg.Fabric.Nodes() {
			return nil, fmt.Errorf("trace: replay: rank %d placed on %v outside the %d-node fabric",
				r, pl.Node, cfg.Fabric.Nodes())
		}
		if pl.Core < 0 || pl.Core > 3 {
			return nil, fmt.Errorf("trace: replay: rank %d on core %d (want 0..3)", r, pl.Core)
		}
	}
	scale := cfg.ComputeScale
	if scale == 0 {
		scale = 1
	}
	if scale < 0 {
		return nil, fmt.Errorf("trace: replay: negative compute scale %g", scale)
	}

	// Per-rank record streams and per-send message-timing slots, both in
	// canonical order.
	streams := make([][]Record, t.Meta.Ranks)
	sendIdx := make([]int, len(t.Records)) // record index -> Sends slot
	nSends := 0
	start := 0
	for i, r := range t.Records {
		if r.Kind == KindSend {
			sendIdx[i] = nSends
			nSends++
		}
		if i+1 == len(t.Records) || t.Records[i+1].Rank != r.Rank {
			streams[r.Rank] = t.Records[start : i+1]
			start = i + 1
		}
	}

	eng := sim.NewEngine()
	defer eng.Close()
	net := transport.New(eng, cfg.Fabric, cfg.Profile, cfg.Policy)
	inbox := make([]*sim.Mailbox[replayMsg], t.Meta.Ranks)
	for i := range inbox {
		inbox[i] = sim.NewMailbox[replayMsg](eng, fmt.Sprintf("replay-rank%d", i))
	}
	res := &ReplayResult{
		Name:       t.Meta.Name,
		Ranks:      t.Meta.Ranks,
		RankFinish: make([]units.Time, t.Meta.Ranks),
		Sends:      make([]MessageTiming, nSends),
	}
	var replayErr error
	fail := func(err error) {
		if replayErr == nil {
			replayErr = err
		}
	}
	base := 0
	for rank := 0; rank < t.Meta.Ranks; rank++ {
		rank := rank
		stream := streams[rank]
		streamBase := base
		base += len(stream)
		eng.Spawn(fmt.Sprintf("replay-rank%d", rank), func(p *sim.Proc) {
			for i, r := range stream {
				switch r.Kind {
				case KindCompute:
					if !cfg.SkipCompute {
						p.Sleep(units.Time(float64(r.Duration) * scale))
					}
				case KindSend:
					slot := sendIdx[streamBase+i]
					mt := &res.Sends[slot]
					mt.SrcRank, mt.DstRank, mt.Tag, mt.Size = rank, r.Peer, r.Tag, r.Size
					mt.SendStart = p.Now()
					msg := replayMsg{src: rank, tag: r.Tag, seq: r.Seq}
					box := inbox[r.Peer]
					net.Transfer(p, cfg.Places[rank], cfg.Places[r.Peer], r.Size, func() {
						mt.Delivered = eng.Now()
						box.Put(msg)
					})
					mt.SendEnd = p.Now()
				case KindRecv:
					m := inbox[rank].GetMatch(p, func(m replayMsg) bool {
						return m.src == r.Peer && m.tag == r.Tag
					})
					if m.seq != r.Dep {
						// Validate guarantees FIFO matching; reaching here
						// is an engine-level bug, not a trace error.
						fail(fmt.Errorf("trace: replay: %v satisfied by send seq %d, dep says %d", r, m.seq, r.Dep))
					}
				}
			}
			res.RankFinish[rank] = p.Now()
		})
	}
	if err := eng.Run(); err != nil {
		return nil, fmt.Errorf("trace: replay %s: %w", t.Meta.Name, err)
	}
	if replayErr != nil {
		return nil, replayErr
	}
	for _, f := range res.RankFinish {
		if f > res.Time {
			res.Time = f
		}
	}
	res.Messages = net.Messages()
	res.WireBytes = net.WireBytes()
	res.Congestion = net.Census(replayCensusTop)
	res.EngineStats = eng.Stats()
	return res, nil
}
