package trace

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"roadrunner/internal/fabric"
	"roadrunner/internal/ib"
	"roadrunner/internal/sim"
	"roadrunner/internal/transport"
	"roadrunner/internal/units"
)

// blockEndpoints places ranks on consecutive global nodes, one rank per
// node, on the given core.
func blockEndpoints(fab *fabric.System, ranks, core int) []transport.Endpoint {
	out := make([]transport.Endpoint, ranks)
	for i := range out {
		out[i] = transport.Endpoint{Node: fabric.FromGlobal(i), Core: core}
	}
	return out
}

// chainTrace builds a serial schedule on two ranks: for each size, rank0
// computes then sends; rank1 receives them in order.
func chainTrace(t *testing.T, sizes []units.Size, compute units.Time) *Trace {
	t.Helper()
	rec := NewRecorder("chain", "test", 2)
	for i, s := range sizes {
		if compute > 0 {
			rec.Compute(0, compute, 0)
		}
		rec.Send(0, 1, i, s, 0)
		rec.Recv(1, 0, i, s, 0)
	}
	tr, err := rec.Trace()
	if err != nil {
		t.Fatalf("recorder: %v", err)
	}
	return tr
}

var chainSizes = []units.Size{
	0, 8, 512, 4 * units.KB, 64 * units.KB, 1 * units.MB,
}

// TestReplayMatchesDirectTransfers pins the core replay-timing contract:
// with the infinite-capacity (or off) policy, replaying a serial
// schedule produces exactly the event sequence of driving
// transport.Net.Transfer by hand — per message, start, sender-visible
// completion and delivery instants all equal, so replay time is the sum
// of the uncontended transfer costs.
func TestReplayMatchesDirectTransfers(t *testing.T) {
	fab := fabric.NewScaled(1)
	compute := 3 * units.Microsecond
	tr := chainTrace(t, chainSizes, compute)
	for _, pol := range []transport.Policy{{}, transport.InfiniteCapacity()} {
		res, err := Replay(tr, ReplayConfig{
			Fabric:  fab,
			Profile: ib.OpenMPI(),
			Places:  blockEndpoints(fab, 2, 1),
			Policy:  pol,
			Observe: ObserveAll,
		})
		if err != nil {
			t.Fatalf("replay: %v", err)
		}

		// The same schedule, hand-driven on a fresh engine.
		eng := sim.NewEngine()
		defer eng.Close()
		net := transport.New(eng, fab, ib.OpenMPI(), pol)
		src := transport.Endpoint{Node: fabric.FromGlobal(0), Core: 1}
		dst := transport.Endpoint{Node: fabric.FromGlobal(1), Core: 1}
		direct := make([]MessageTiming, len(chainSizes))
		eng.Spawn("sender", func(p *sim.Proc) {
			for i, size := range chainSizes {
				p.Sleep(compute)
				mt := &direct[i]
				mt.SendStart = p.Now()
				net.Transfer(p, src, dst, size, func() { mt.Delivered = eng.Now() })
				mt.SendEnd = p.Now()
			}
		})
		if err := eng.Run(); err != nil {
			t.Fatalf("direct run: %v", err)
		}
		for i := range chainSizes {
			got, want := res.Sends[i], direct[i]
			if got.SendStart != want.SendStart || got.SendEnd != want.SendEnd || got.Delivered != want.Delivered {
				t.Errorf("policy %+v message %d: replay (%v %v %v) != direct (%v %v %v)",
					pol, i, got.SendStart, got.SendEnd, got.Delivered,
					want.SendStart, want.SendEnd, want.Delivered)
			}
		}
		last := direct[len(direct)-1]
		if res.Time != last.Delivered {
			t.Errorf("policy %+v: replay time %v, want last delivery %v", pol, res.Time, last.Delivered)
		}
	}
}

// TestInfiniteCapacityMatchesOffPath: the routed-but-unthrottled fabric
// reproduces the unrouted path event-for-event on an irregular many-rank
// schedule; only the census differs (present vs nil).
func TestInfiniteCapacityMatchesOffPath(t *testing.T) {
	fab := fabric.NewScaled(1)
	tr := meshTrace(t, 8, 16*units.KB)
	base := ReplayConfig{Fabric: fab, Profile: ib.OpenMPI(), Places: blockEndpoints(fab, 8, 1), Observe: ObserveAll}

	off := base
	off.Policy = transport.Policy{}
	inf := base
	inf.Policy = transport.InfiniteCapacity()

	ro, err := Replay(tr, off)
	if err != nil {
		t.Fatalf("off replay: %v", err)
	}
	ri, err := Replay(tr, inf)
	if err != nil {
		t.Fatalf("infinite replay: %v", err)
	}
	if ro.Time != ri.Time {
		t.Errorf("makespan %v off vs %v infinite", ro.Time, ri.Time)
	}
	if !reflect.DeepEqual(ro.Sends, ri.Sends) {
		t.Error("per-message timings differ between off and infinite-capacity policies")
	}
	if !reflect.DeepEqual(ro.RankFinish, ri.RankFinish) {
		t.Error("rank finish times differ between off and infinite-capacity policies")
	}
	if ro.Congestion != nil {
		t.Error("off policy produced a census")
	}
	if ri.Congestion == nil {
		t.Error("infinite-capacity policy produced no census")
	}
}

// meshTrace builds an irregular all-pairs burst: every rank sends to
// every higher rank, then receives from every lower rank — enough
// concurrency to exercise mailbox matching and shared links.
func meshTrace(t *testing.T, ranks int, size units.Size) *Trace {
	t.Helper()
	rec := NewRecorder(fmt.Sprintf("mesh-%d", ranks), "test", ranks)
	for r := 0; r < ranks; r++ {
		rec.Compute(r, units.Time(r)*units.Microsecond, 0)
		for dst := r + 1; dst < ranks; dst++ {
			rec.Send(r, dst, r*ranks+dst, size, 0)
		}
		for src := 0; src < r; src++ {
			rec.Recv(r, src, src*ranks+r, size, 0)
		}
	}
	tr, err := rec.Trace()
	if err != nil {
		t.Fatalf("recorder: %v", err)
	}
	return tr
}

// TestReplayDeterministic: byte-identical results across repeated runs,
// congested and not.
func TestReplayDeterministic(t *testing.T) {
	fab := fabric.NewScaled(1)
	tr := meshTrace(t, 8, 64*units.KB)
	for _, pol := range []transport.Policy{{}, transport.Congested()} {
		cfg := ReplayConfig{Fabric: fab, Profile: ib.OpenMPI(), Places: blockEndpoints(fab, 8, 1), Policy: pol, Observe: ObserveAll}
		a, err := Replay(tr, cfg)
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
		b, err := Replay(tr, cfg)
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("policy %+v: repeated replays differ", pol)
		}
	}
}

// TestCongestionSlowsSharedLinks: flows forced across one shared cable
// serialize under the wormhole policy, and the census reports the
// queueing.
func TestCongestionSlowsSharedLinks(t *testing.T) {
	fab := fabric.NewScaled(1)
	// 4 ranks on crossbar 0 all send at once to 4 ranks on crossbar 1:
	// the routes share spine cables, so the congested replay must queue.
	ranks := 8
	rec := NewRecorder("cross", "test", ranks)
	size := 1 * units.MB
	for r := 0; r < 4; r++ {
		rec.Send(r, 4+r, r, size, 0)
	}
	for r := 4; r < ranks; r++ {
		rec.Recv(r, r-4, r-4, size, 0)
	}
	tr, err := rec.Trace()
	if err != nil {
		t.Fatalf("recorder: %v", err)
	}
	places := make([]transport.Endpoint, ranks)
	for r := 0; r < 4; r++ {
		places[r] = transport.Endpoint{Node: fabric.FromGlobal(r), Core: 1}
		// Destination globals 8, 20, 32, 44 all hash onto spine 8, so the
		// four flows out of crossbar 0 share the xbar0→spine8 cable.
		places[4+r] = transport.Endpoint{Node: fabric.FromGlobal(8 + 12*r), Core: 1}
	}
	cfg := ReplayConfig{Fabric: fab, Profile: ib.OpenMPI(), Places: places, Observe: ObserveCensus}
	cfg.Policy = transport.InfiniteCapacity()
	baseline, err := Replay(tr, cfg)
	if err != nil {
		t.Fatalf("baseline replay: %v", err)
	}
	cfg.Policy = transport.Congested()
	congested, err := Replay(tr, cfg)
	if err != nil {
		t.Fatalf("congested replay: %v", err)
	}
	if congested.Time <= baseline.Time {
		t.Errorf("congested %v not slower than baseline %v", congested.Time, baseline.Time)
	}
	c := congested.Congestion
	if c == nil || c.Queued == 0 || c.TotalWait == 0 {
		t.Fatalf("no queueing in census: %+v", c)
	}
}

// TestReplayComputeScale stretches compute records without touching
// communication.
func TestReplayComputeScale(t *testing.T) {
	fab := fabric.NewScaled(1)
	tr := chainTrace(t, []units.Size{8 * units.KB}, 10*units.Microsecond)
	cfg := ReplayConfig{Fabric: fab, Profile: ib.OpenMPI(), Places: blockEndpoints(fab, 2, 1)}
	r1, err := Replay(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ComputeScale = 2
	r2, err := Replay(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := r1.Time + 10*units.Microsecond; r2.Time != want {
		t.Errorf("scaled replay %v, want %v", r2.Time, want)
	}
	cfg.ComputeScale = -1
	if _, err := Replay(tr, cfg); err == nil {
		t.Error("negative compute scale accepted")
	}
	// Non-finite scales would propagate NaN/Inf into every compute
	// sleep (and a NaN duration panics the engine mid-run); they must
	// be rejected up front like negative ones.
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		cfg.ComputeScale = bad
		if _, err := Replay(tr, cfg); err == nil {
			t.Errorf("compute scale %v accepted", bad)
		}
	}
}

func TestReplayConfigErrors(t *testing.T) {
	fab := fabric.NewScaled(1)
	tr := pingPong(t)
	cases := []struct {
		name string
		cfg  ReplayConfig
	}{
		{"nil fabric", ReplayConfig{Profile: ib.OpenMPI(), Places: blockEndpoints(fab, 2, 1)}},
		{"too few placements", ReplayConfig{Fabric: fab, Profile: ib.OpenMPI(), Places: blockEndpoints(fab, 1, 1)}},
		{"node outside fabric", ReplayConfig{Fabric: fab, Profile: ib.OpenMPI(),
			Places: []transport.Endpoint{{Node: fabric.NodeID{CU: 3, Node: 0}, Core: 1}, {Node: fabric.FromGlobal(1), Core: 1}}}},
		{"bad core", ReplayConfig{Fabric: fab, Profile: ib.OpenMPI(),
			Places: []transport.Endpoint{{Node: fabric.FromGlobal(0), Core: 7}, {Node: fabric.FromGlobal(1), Core: 1}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Replay(tr, tc.cfg); err == nil {
				t.Fatal("bad config accepted")
			}
		})
	}
	// An invalid trace is rejected before any engine is built.
	bad := mutate(t, func(tr *Trace) { tr.Records[1].Tag = 99 })
	if _, err := Replay(bad, ReplayConfig{Fabric: fab, Profile: ib.OpenMPI(), Places: blockEndpoints(fab, 2, 1)}); err == nil {
		t.Fatal("invalid trace replayed")
	}
}
