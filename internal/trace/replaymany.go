package trace

import (
	"fmt"

	"roadrunner/internal/sim"
	"roadrunner/internal/transport"
)

// ReplayMany replays the trace under every placement as domains of a
// zero-lookahead sim.Cluster: each placement's replay is an independent
// simulation on its own domain engine, run to completion on whichever
// of the workers claims it. Results come back in placement order and
// are byte-identical to a serial loop of fresh Replay calls at any
// worker count; alongside them come the cluster's per-domain counters
// (events executed, windows, cross-domain traffic — zero by
// construction here) and per-worker busy/idle wall clock, the
// observability surface rrsim's -des stats print exposes. workers < 1
// means one per placement.
func ReplayMany(t *Trace, cfg ReplayConfig, placements [][]transport.Endpoint,
	workers int) ([]*ReplayResult, []sim.DomainStats, []sim.WorkerStats, error) {
	if len(placements) == 0 {
		return nil, nil, nil, fmt.Errorf("trace: replay: no placements")
	}
	if workers < 1 {
		workers = len(placements)
	}
	cl := sim.NewCluster(len(placements), 0)
	defer cl.Close()
	evs := make([]*Evaluator, len(placements))
	for i, places := range placements {
		ev, err := newEvaluatorOn(cl.Domain(i), t, cfg)
		if err != nil {
			return nil, nil, nil, err
		}
		evs[i] = ev
		if err := ev.start(places); err != nil {
			return nil, nil, nil, err
		}
	}
	if err := cl.Run(workers); err != nil {
		return nil, nil, nil, fmt.Errorf("trace: replay %s: %w", t.Meta.Name, err)
	}
	out := make([]*ReplayResult, len(placements))
	for i, ev := range evs {
		r, err := ev.finish()
		if err != nil {
			return nil, nil, nil, err
		}
		out[i] = r
	}
	return out, cl.Stats(), cl.WorkerStats(), nil
}
