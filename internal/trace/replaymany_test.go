package trace

import (
	"reflect"
	"testing"

	"roadrunner/internal/fabric"
	"roadrunner/internal/ib"
	"roadrunner/internal/transport"
	"roadrunner/internal/units"
)

// TestReplayManyMatchesSerialReplays pins the batch contract: ReplayMany
// over N placements returns, at every worker count, exactly the results
// a serial loop of fresh Replay calls produces — and its per-domain
// counters account for every event with no cross-domain traffic.
func TestReplayManyMatchesSerialReplays(t *testing.T) {
	fab := fabric.NewScaled(1)
	tr := meshTrace(t, 16, 96*units.KB)
	placements := evalPlacements(fab, 16)
	cfg := ReplayConfig{Fabric: fab, Profile: ib.OpenMPI(),
		Policy: transport.Congested(), Observe: ObserveAll}

	want := make([]*ReplayResult, len(placements))
	for i, places := range placements {
		one := cfg
		one.Places = places
		r, err := Replay(tr, one)
		if err != nil {
			t.Fatalf("fresh replay %d: %v", i, err)
		}
		want[i] = r
	}
	for _, workers := range []int{1, 2, 4, 8} {
		got, dstats, wstats, err := ReplayMany(tr, cfg, placements, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(wstats) == 0 {
			t.Fatalf("workers=%d: no worker stats", workers)
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("workers=%d placement %d: batch result differs from fresh replay\n  batch: %+v\n  fresh: %+v",
					workers, i, got[i], want[i])
			}
			if dstats[i].Events != got[i].EngineStats.Dispatched {
				t.Errorf("workers=%d domain %d: %d events counted, engine dispatched %d",
					workers, i, dstats[i].Events, got[i].EngineStats.Dispatched)
			}
			if dstats[i].Sent != 0 || dstats[i].Received != 0 {
				t.Errorf("workers=%d domain %d: cross-domain traffic %+v on independent replays",
					workers, i, dstats[i])
			}
		}
	}
}

// TestReplayManyRejectsBadInput covers the batch error paths: an empty
// placement set and an invalid placement fail loudly.
func TestReplayManyRejectsBadInput(t *testing.T) {
	fab := fabric.NewScaled(1)
	tr := meshTrace(t, 4, units.KB)
	cfg := ReplayConfig{Fabric: fab, Profile: ib.OpenMPI()}
	if _, _, _, err := ReplayMany(tr, cfg, nil, 2); err == nil {
		t.Error("no placements accepted")
	}
	bad := evalPlacements(fab, 4)[0]
	bad[0].Core = 7
	if _, _, _, err := ReplayMany(tr, cfg, [][]transport.Endpoint{bad}, 2); err == nil {
		t.Error("invalid core accepted")
	}
}
