// Package trace captures and replays application communication
// schedules over the Roadrunner interconnect models.
//
// The congestion-aware transport (internal/transport) was validated by
// synthetic collective sweeps; this package feeds it real application
// phases instead, the way the BlueGene/L and CP-PACS design teams
// validated their fabrics by replaying application communication
// schedules against the network model. A Trace is an ordered per-rank
// stream of point-to-point send/recv/compute records — each with a
// logical timestamp from the capture run and, for receives, an explicit
// dependency on the matching send — serialized one JSON object per line
// (a header line, then one line per record in canonical rank-major
// order).
//
// Three layers:
//
//   - the format (this file): Record/Trace, canonical ordering, and
//     Validate, which checks per-rank sequence density, perfect FIFO
//     send/recv matching per (src, dst, tag) channel, and acyclicity of
//     the dependency graph — a validated trace can never deadlock the
//     replay engine;
//   - the codec (codec.go): JSONL (de)serialization whose output is
//     byte-canonical, so serialize→parse→serialize is the identity;
//   - the replay engine (replay.go): drives transport.Net.Transfer
//     directly from a trace under any rank→node placement and
//     congestion policy, honoring per-rank ordering and cross-rank
//     dependencies via sim procs, and reporting per-message timing plus
//     the link-contention census.
//
// Capture hooks live with the applications (sweep3d.CaptureDES records
// the Sweep3D wavefront schedule); the scenario layer sweeps a captured
// trace across placements, and cmd/rrtrace exposes
// capture/replay/inspect on the command line.
package trace

import (
	"fmt"
	"sort"

	"roadrunner/internal/units"
)

// Kind classifies a trace record.
type Kind string

// The record kinds.
const (
	// KindCompute is local work: the rank is busy for Duration.
	KindCompute Kind = "compute"
	// KindSend is a blocking point-to-point send of Size bytes to Peer.
	KindSend Kind = "send"
	// KindRecv blocks until the matching send's payload arrives. Dep is
	// the sequence number of that send in Peer's stream.
	KindRecv Kind = "recv"
)

// valid reports whether k is one of the three record kinds.
func (k Kind) valid() bool {
	return k == KindCompute || k == KindSend || k == KindRecv
}

// NoPeer and NoDep are the Peer/Dep values of records the field does not
// apply to, so every field of every record is explicit in the JSONL.
const (
	NoPeer = -1
	NoDep  = -1
)

// Record is one operation of one rank's stream.
type Record struct {
	// Rank issues the operation; Seq is its position in the rank's
	// stream (dense from 0). (Rank, Seq) identifies a record uniquely.
	Rank int
	Seq  int
	Kind Kind
	// Peer is the destination rank of a send or the source rank of a
	// recv (NoPeer for compute).
	Peer int
	// Tag disambiguates messages between the same rank pair.
	Tag int
	// Size is the payload wire size of a send and of its matching recv.
	Size units.Size
	// Duration is the busy time of a compute record.
	Duration units.Time
	// At is the logical timestamp of the operation's completion in the
	// capture run. Replay derives its own timing; At is informational
	// (inspection, capture-vs-replay comparison) and must be
	// non-negative.
	At units.Time
	// Dep is the Seq of the matching send in Peer's stream (recv records
	// only, NoDep otherwise): the explicit cross-rank dependency.
	Dep int
}

// String renders the record on one line.
func (r Record) String() string {
	switch r.Kind {
	case KindCompute:
		return fmt.Sprintf("rank%d[%d] compute %v", r.Rank, r.Seq, r.Duration)
	case KindSend:
		return fmt.Sprintf("rank%d[%d] send %v to %d tag %d", r.Rank, r.Seq, r.Size, r.Peer, r.Tag)
	case KindRecv:
		return fmt.Sprintf("rank%d[%d] recv %v from %d tag %d (dep %d)", r.Rank, r.Seq, r.Size, r.Peer, r.Tag, r.Dep)
	}
	return fmt.Sprintf("rank%d[%d] %q", r.Rank, r.Seq, string(r.Kind))
}

// Meta describes a trace: where it came from and how many ranks it
// spans.
type Meta struct {
	// Name labels the trace (e.g. "sweep3d-8x8").
	Name string
	// App is the application that produced it.
	App string
	// Ranks is the number of rank streams (ranks are dense from 0).
	Ranks int
	// Attrs carries capture parameters as key/value strings (grid
	// dimensions, blocking factors, ...). Keys serialize sorted.
	Attrs map[string]string
}

// Trace is a captured communication schedule: per-rank record streams in
// canonical order (rank-major, sequence-minor).
type Trace struct {
	Meta    Meta
	Records []Record
}

// Stats summarises a trace's content.
type Stats struct {
	Ranks    int
	Records  int
	Computes int
	Sends    int
	Recvs    int
	// Bytes is the total payload carried by send records; ComputeTime
	// the total busy time of compute records (summed over ranks).
	Bytes       units.Size
	ComputeTime units.Time
	// Span is the largest At timestamp: the capture run's makespan.
	Span units.Time
}

// Stats tallies the trace.
func (t *Trace) Stats() Stats {
	s := Stats{Ranks: t.Meta.Ranks, Records: len(t.Records)}
	for _, r := range t.Records {
		switch r.Kind {
		case KindCompute:
			s.Computes++
			s.ComputeTime += r.Duration
		case KindSend:
			s.Sends++
			s.Bytes += r.Size
		case KindRecv:
			s.Recvs++
		}
		if r.At > s.Span {
			s.Span = r.At
		}
	}
	return s
}

// Normalize sorts the records into canonical order (rank-major,
// sequence-minor). Decode calls it so hand-edited files in any order
// load; capture and the codec always produce canonical order already.
func (t *Trace) Normalize() {
	sort.SliceStable(t.Records, func(i, j int) bool {
		a, b := t.Records[i], t.Records[j]
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		return a.Seq < b.Seq
	})
}

// chanKey identifies a directed (src, dst, tag) message channel, on
// which sends and recvs match in FIFO order.
type chanKey struct {
	src, dst, tag int
}

// Format bounds, enforced by Validate: generous enough for a day-long
// full-machine phase, tight enough that a replay's simulated clock (an
// int64 of picoseconds, ±106 days) cannot overflow — the makespan is
// bounded by the total busy time, which these caps keep far below the
// representable range. Without them a crafted trace could wrap the
// calendar and panic the engine instead of erroring at load time.
const (
	// MaxMessageSize caps one record's payload (1 TB).
	MaxMessageSize units.Size = 1 << 40
	// MaxComputeDuration caps one compute record (1 hour).
	MaxComputeDuration units.Time = 3600 * units.Second
	// MaxTotalCompute caps the summed compute across all records (30
	// days).
	MaxTotalCompute units.Time = 720 * 3600 * units.Second
	// MaxTotalBytes caps the summed payload across all records (1 PB,
	// ~11 simulated days of streaming at the far-core rate).
	MaxTotalBytes units.Size = 1 << 50
	// MaxRanks caps a trace's rank count (an order of magnitude above
	// the full machine's 97,920 SPE ranks). Validate allocates per-rank
	// state, so an unchecked header could demand petabytes or overflow
	// make — a panic, not the error the decode contract promises.
	MaxRanks = 1 << 20
)

// Validate checks every invariant the replay engine relies on:
//
//   - records are in canonical order with per-rank sequence numbers
//     dense from 0;
//   - every field is consistent with its record's kind (peers in range,
//     sizes and durations non-negative, NoPeer/NoDep where inapplicable);
//   - sends and recvs pair perfectly: the k-th recv on a (src, dst, tag)
//     channel matches the k-th send, with equal sizes and the recv's Dep
//     naming exactly that send's Seq — no unmatched send, no orphan recv;
//   - the dependency graph (per-rank program order plus send→recv
//     edges) is acyclic, so a replay can always make progress.
//
// A trace that passes Validate replays without deadlock under every
// placement and congestion policy.
func (t *Trace) Validate() error {
	if t.Meta.Ranks < 1 {
		return fmt.Errorf("trace: %d ranks", t.Meta.Ranks)
	}
	if t.Meta.Ranks > MaxRanks {
		return fmt.Errorf("trace: %d ranks beyond the %d format bound", t.Meta.Ranks, MaxRanks)
	}
	nextSeq := make([]int, t.Meta.Ranks)
	prevRank := 0
	var totalCompute units.Time
	var totalBytes units.Size
	for i, r := range t.Records {
		if r.Rank < 0 || r.Rank >= t.Meta.Ranks {
			return fmt.Errorf("trace: record %d: rank %d outside %d ranks", i, r.Rank, t.Meta.Ranks)
		}
		if r.Rank < prevRank {
			return fmt.Errorf("trace: record %d: rank %d after rank %d (not canonical order)", i, r.Rank, prevRank)
		}
		prevRank = r.Rank
		if r.Seq != nextSeq[r.Rank] {
			return fmt.Errorf("trace: record %d: rank %d seq %d, want %d (dense per-rank order)",
				i, r.Rank, r.Seq, nextSeq[r.Rank])
		}
		nextSeq[r.Rank]++
		if !r.Kind.valid() {
			return fmt.Errorf("trace: record %d: unknown kind %q", i, string(r.Kind))
		}
		if r.Size < 0 {
			return fmt.Errorf("trace: %v: negative size", r)
		}
		if r.Size > MaxMessageSize {
			return fmt.Errorf("trace: %v: size beyond the %v format bound", r, MaxMessageSize)
		}
		if r.Duration < 0 {
			return fmt.Errorf("trace: %v: negative duration", r)
		}
		if r.Duration > MaxComputeDuration {
			return fmt.Errorf("trace: %v: duration beyond the %v format bound", r, MaxComputeDuration)
		}
		if totalCompute += r.Duration; totalCompute > MaxTotalCompute {
			return fmt.Errorf("trace: total compute beyond the %v format bound", MaxTotalCompute)
		}
		if totalBytes += r.Size; totalBytes > MaxTotalBytes {
			return fmt.Errorf("trace: total payload beyond the %v format bound", MaxTotalBytes)
		}
		if r.At < 0 {
			return fmt.Errorf("trace: %v: negative timestamp", r)
		}
		if r.Tag < 0 {
			return fmt.Errorf("trace: %v: negative tag", r)
		}
		switch r.Kind {
		case KindCompute:
			if r.Peer != NoPeer || r.Dep != NoDep || r.Size != 0 || r.Tag != 0 {
				return fmt.Errorf("trace: %v: compute with message fields set", r)
			}
		case KindSend:
			if r.Peer < 0 || r.Peer >= t.Meta.Ranks {
				return fmt.Errorf("trace: %v: peer outside %d ranks", r, t.Meta.Ranks)
			}
			if r.Dep != NoDep {
				return fmt.Errorf("trace: %v: send with dep set", r)
			}
			if r.Duration != 0 {
				return fmt.Errorf("trace: %v: send with duration set", r)
			}
		case KindRecv:
			if r.Peer < 0 || r.Peer >= t.Meta.Ranks {
				return fmt.Errorf("trace: %v: peer outside %d ranks", r, t.Meta.Ranks)
			}
			if r.Dep < 0 {
				return fmt.Errorf("trace: %v: recv without dep", r)
			}
			if r.Duration != 0 {
				return fmt.Errorf("trace: %v: recv with duration set", r)
			}
		}
	}
	return t.validateMatching()
}

// validateMatching pairs sends with recvs per channel and runs the
// acyclicity check over the resulting dependency graph.
func (t *Trace) validateMatching() error {
	// Global index of each record, for graph edges.
	type ref struct {
		idx  int // index into t.Records
		size units.Size
		seq  int
	}
	sends := make(map[chanKey][]ref)
	recvs := make(map[chanKey][]ref)
	for i, r := range t.Records {
		switch r.Kind {
		case KindSend:
			k := chanKey{src: r.Rank, dst: r.Peer, tag: r.Tag}
			sends[k] = append(sends[k], ref{idx: i, size: r.Size, seq: r.Seq})
		case KindRecv:
			k := chanKey{src: r.Peer, dst: r.Rank, tag: r.Tag}
			recvs[k] = append(recvs[k], ref{idx: i, size: r.Size, seq: r.Seq})
		}
	}
	// sendEdge[i] is the recv record index the send at index i unblocks
	// (-1 for non-sends and the final sentinel).
	sendEdge := make([]int, len(t.Records))
	for i := range sendEdge {
		sendEdge[i] = -1
	}
	for k, ss := range sends {
		rs := recvs[k]
		if len(rs) != len(ss) {
			return fmt.Errorf("trace: channel %d->%d tag %d: %d sends but %d recvs",
				k.src, k.dst, k.tag, len(ss), len(rs))
		}
		for j, s := range ss {
			r := rs[j]
			rec := t.Records[r.idx]
			if rec.Dep != s.seq {
				return fmt.Errorf("trace: %v: dep %d, want seq %d of the matching send (FIFO on channel %d->%d tag %d)",
					rec, rec.Dep, s.seq, k.src, k.dst, k.tag)
			}
			if r.size != s.size {
				return fmt.Errorf("trace: %v: size %v but matching send carries %v", rec, r.size, s.size)
			}
			sendEdge[s.idx] = r.idx
		}
	}
	for k, rs := range recvs {
		if len(sends[k]) != len(rs) {
			return fmt.Errorf("trace: channel %d->%d tag %d: %d recvs but %d sends",
				k.src, k.dst, k.tag, len(rs), len(sends[k]))
		}
	}
	return t.validateAcyclic(sendEdge)
}

// validateAcyclic runs Kahn's algorithm over program-order and send→recv
// edges: if every record can be scheduled, no replay ordering can
// deadlock.
func (t *Trace) validateAcyclic(sendEdge []int) error {
	n := len(t.Records)
	indeg := make([]int, n)
	for i, r := range t.Records {
		if r.Seq > 0 {
			indeg[i]++ // program-order edge from the rank's previous record
		}
		if e := sendEdge[i]; e >= 0 {
			indeg[e]++
		}
	}
	queue := make([]int, 0, n)
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	done := 0
	for len(queue) > 0 {
		i := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		done++
		// Successors: the rank's next record, and the matched recv.
		if j := i + 1; j < n && t.Records[j].Rank == t.Records[i].Rank {
			indeg[j]--
			if indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
		if e := sendEdge[i]; e >= 0 {
			indeg[e]--
			if indeg[e] == 0 {
				queue = append(queue, e)
			}
		}
	}
	if done != n {
		return fmt.Errorf("trace: dependency cycle: only %d of %d records schedulable (a replay would deadlock)", done, n)
	}
	return nil
}
