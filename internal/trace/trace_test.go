package trace

import (
	"strings"
	"testing"

	"roadrunner/internal/units"
)

// pingPong builds a tiny valid two-rank trace through the recorder:
// rank 0 computes and sends, rank 1 receives, computes, and replies.
func pingPong(t *testing.T) *Trace {
	t.Helper()
	rec := NewRecorder("ping-pong", "test", 2)
	rec.Compute(0, 5*units.Microsecond, 5*units.Microsecond)
	rec.Send(0, 1, 7, 4*units.KB, 6*units.Microsecond)
	rec.Recv(0, 1, 8, 4*units.KB, 20*units.Microsecond)
	rec.Recv(1, 0, 7, 4*units.KB, 10*units.Microsecond)
	rec.Compute(1, 5*units.Microsecond, 15*units.Microsecond)
	rec.Send(1, 0, 8, 4*units.KB, 16*units.Microsecond)
	tr, err := rec.Trace()
	if err != nil {
		t.Fatalf("recorder: %v", err)
	}
	return tr
}

func TestRecorderResolvesDeps(t *testing.T) {
	tr := pingPong(t)
	if len(tr.Records) != 6 {
		t.Fatalf("got %d records", len(tr.Records))
	}
	// Canonical order: rank 0's stream then rank 1's.
	wantKinds := []Kind{KindCompute, KindSend, KindRecv, KindRecv, KindCompute, KindSend}
	for i, r := range tr.Records {
		if r.Kind != wantKinds[i] {
			t.Errorf("record %d kind %s, want %s", i, r.Kind, wantKinds[i])
		}
	}
	// rank0's recv (seq 2) depends on rank1's send (seq 2); rank1's recv
	// (seq 0) depends on rank0's send (seq 1).
	if got := tr.Records[2].Dep; got != 2 {
		t.Errorf("rank0 recv dep %d, want 2", got)
	}
	if got := tr.Records[3].Dep; got != 1 {
		t.Errorf("rank1 recv dep %d, want 1", got)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

func TestStats(t *testing.T) {
	tr := pingPong(t)
	s := tr.Stats()
	if s.Ranks != 2 || s.Records != 6 || s.Sends != 2 || s.Recvs != 2 || s.Computes != 2 {
		t.Fatalf("stats %+v", s)
	}
	if s.Bytes != 8*units.KB {
		t.Errorf("bytes %v", s.Bytes)
	}
	if s.ComputeTime != 10*units.Microsecond {
		t.Errorf("compute time %v", s.ComputeTime)
	}
	if s.Span != 20*units.Microsecond {
		t.Errorf("span %v", s.Span)
	}
}

// mutate clones the ping-pong trace and applies f to the clone.
func mutate(t *testing.T, f func(*Trace)) *Trace {
	t.Helper()
	tr := pingPong(t)
	cp := &Trace{Meta: tr.Meta, Records: append([]Record(nil), tr.Records...)}
	f(cp)
	return cp
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Trace)
		want string
	}{
		{"zero ranks", func(tr *Trace) { tr.Meta.Ranks = 0 }, "ranks"},
		// A crafted header must not make Validate allocate per-rank
		// state for absurd counts (or overflow make into a panic).
		{"absurd rank count", func(tr *Trace) { tr.Meta.Ranks = 1 << 62 }, "format bound"},
		{"rank out of range", func(tr *Trace) { tr.Records[0].Rank = 5 }, "outside"},
		{"seq gap", func(tr *Trace) { tr.Records[2].Seq = 7 }, "dense"},
		{"duplicate seq", func(tr *Trace) { tr.Records[2].Seq = 1 }, "dense"},
		{"unknown kind", func(tr *Trace) { tr.Records[0].Kind = "warp" }, "unknown kind"},
		{"negative size", func(tr *Trace) { tr.Records[1].Size = -1 }, "negative size"},
		{"negative duration", func(tr *Trace) { tr.Records[0].Duration = -1 }, "negative duration"},
		// The format bounds keep a replay's int64-picosecond clock from
		// overflowing (which would panic the engine instead of erroring).
		{"oversize message", func(tr *Trace) {
			tr.Records[1].Size = MaxMessageSize + 1
			tr.Records[3].Size = MaxMessageSize + 1
		}, "format bound"},
		{"oversize compute", func(tr *Trace) { tr.Records[0].Duration = MaxComputeDuration + 1 }, "format bound"},
		{"negative timestamp", func(tr *Trace) { tr.Records[0].At = -1 }, "negative timestamp"},
		{"negative tag", func(tr *Trace) { tr.Records[1].Tag = -1 }, "negative tag"},
		{"compute with peer", func(tr *Trace) { tr.Records[0].Peer = 1 }, "message fields"},
		{"send with dep", func(tr *Trace) { tr.Records[1].Dep = 0 }, "dep set"},
		{"send peer out of range", func(tr *Trace) { tr.Records[1].Peer = 9 }, "peer outside"},
		{"recv without dep", func(tr *Trace) { tr.Records[3].Dep = NoDep }, "without dep"},
		{"orphan recv", func(tr *Trace) { tr.Records[3].Tag = 99 }, "sends"},
		{"unmatched send", func(tr *Trace) { tr.Records[1].Tag = 99 }, "recvs"},
		{"size mismatch", func(tr *Trace) { tr.Records[3].Size = 1 }, "matching send carries"},
		{"wrong dep seq", func(tr *Trace) { tr.Records[3].Dep = 0 }, "FIFO"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := mutate(t, tc.mut)
			err := tr.Validate()
			if err == nil {
				t.Fatal("invalid trace accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateDetectsCycle(t *testing.T) {
	// rank0: recv from 1 then send to 1; rank1: recv from 0 then send to
	// 0 — each waits on the other's send, a true deadlock cycle even
	// though every record is well-formed and every channel is matched.
	tr := &Trace{
		Meta: Meta{Name: "cycle", App: "test", Ranks: 2},
		Records: []Record{
			{Rank: 0, Seq: 0, Kind: KindRecv, Peer: 1, Tag: 1, Size: 8, Dep: 1},
			{Rank: 0, Seq: 1, Kind: KindSend, Peer: 1, Tag: 0, Size: 8, Dep: NoDep},
			{Rank: 1, Seq: 0, Kind: KindRecv, Peer: 0, Tag: 0, Size: 8, Dep: 1},
			{Rank: 1, Seq: 1, Kind: KindSend, Peer: 0, Tag: 1, Size: 8, Dep: NoDep},
		},
	}
	err := tr.Validate()
	if err == nil {
		t.Fatal("cyclic trace accepted")
	}
	if !strings.Contains(err.Error(), "cycle") {
		t.Errorf("error %q does not mention the cycle", err)
	}
}

func TestNormalizeSorts(t *testing.T) {
	tr := pingPong(t)
	// Reverse the canonical order; Normalize must restore it.
	for i, j := 0, len(tr.Records)-1; i < j; i, j = i+1, j-1 {
		tr.Records[i], tr.Records[j] = tr.Records[j], tr.Records[i]
	}
	tr.Normalize()
	if err := tr.Validate(); err != nil {
		t.Fatalf("normalized trace invalid: %v", err)
	}
}

func TestSelfSendAllowed(t *testing.T) {
	// A rank sending to itself (send before recv in its own program
	// order) is legal: the payload is delivered asynchronously.
	rec := NewRecorder("self", "test", 1)
	rec.Send(0, 0, 3, 64, 0)
	rec.Recv(0, 0, 3, 64, 1)
	tr, err := rec.Trace()
	if err != nil {
		t.Fatalf("recorder: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("self-send trace rejected: %v", err)
	}
	// The reverse order — recv first — is a self-deadlock.
	bad := &Trace{
		Meta: Meta{Name: "self-deadlock", App: "test", Ranks: 1},
		Records: []Record{
			{Rank: 0, Seq: 0, Kind: KindRecv, Peer: 0, Tag: 3, Size: 64, Dep: 1},
			{Rank: 0, Seq: 1, Kind: KindSend, Peer: 0, Tag: 3, Size: 64, Dep: NoDep},
		},
	}
	if err := bad.Validate(); err == nil {
		t.Fatal("self-deadlocking trace accepted")
	}
}
