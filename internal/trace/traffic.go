package trace

import (
	"sort"

	"roadrunner/internal/units"
)

// PairTraffic aggregates the placement-independent traffic of one
// directed rank pair: every quantity here is a property of the trace
// alone, so an analytic cost model can precompute it once and reuse it
// for every candidate rank→node mapping.
type PairTraffic struct {
	// Src and Dst are the sending and receiving ranks.
	Src, Dst int
	// Msgs counts the messages sent Src→Dst, Rendezvous the subset above
	// the eager threshold (each pays the rendezvous round trip before
	// streaming), Bytes their summed payload.
	Msgs       int64
	Rendezvous int64
	Bytes      units.Size
	// CritMsgs, CritRdv and CritBytes are the same three quantities
	// restricted to the Src→Dst messages whose send→recv edge the
	// trace's critical dependency chain crosses
	// (TrafficMatrix.CritMsgs documents the chain).
	CritMsgs  int64
	CritRdv   int64
	CritBytes units.Size
	// PathMsgs, PathRdv and PathBytes count the Src→Dst sends whose
	// send records lie on the chain path itself (reached through Src's
	// program order): a blocking sender serializes each of these —
	// overhead, any rendezvous trip and the payload stream — into the
	// chain even when the chain continues through its own next record
	// rather than across the message. Every crossed edge's send is on
	// the path, so Crit* ⊆ Path* per pair.
	PathMsgs  int64
	PathRdv   int64
	PathBytes units.Size
}

// TrafficMatrix is the placement-independent traffic summary of a
// validated trace: per-directed-rank-pair message/byte/rendezvous
// counts plus the critical dependency chain through the trace's DAG
// (program order + send→recv edges). It is the precompute an analytic
// placement-cost surrogate folds through a topology's routes: the pair
// totals become per-link offered load under a candidate mapping, and
// the critical-chain terms bound the serial latency no mapping can
// remove.
type TrafficMatrix struct {
	// Ranks is the trace's rank count.
	Ranks int
	// Pairs holds every directed rank pair that carried at least one
	// message, in canonical order (Src-major, Dst-minor).
	Pairs []PairTraffic
	// Msgs, Rendezvous and Bytes are the trace-wide totals over Pairs.
	Msgs       int64
	Rendezvous int64
	Bytes      units.Size
	// CritMsgs, CritRdv, CritBytes and CritCompute describe the critical
	// chain: the dependency path maximizing (message edges, then bytes,
	// then compute) through the DAG — for a wavefront schedule like
	// Sweep3D, the longest relay of sends a replay must serialize. A
	// chain message appears in both the chain terms and its pair's
	// Crit* fields.
	CritMsgs    int64
	CritRdv     int64
	CritBytes   units.Size
	CritCompute units.Time
	// RankCompute is each rank's compute total; MaxRankCompute the
	// largest of them — the compute-only lower bound on any replay's
	// makespan.
	RankCompute    []units.Time
	MaxRankCompute units.Time
}

// Traffic computes the trace's placement-independent traffic matrix.
// eager is the transport profile's eager threshold (messages strictly
// above it are counted as rendezvous). The trace is validated first;
// the matrix of an invalid trace is an error, never a panic.
func (t *Trace) Traffic(eager units.Size) (*TrafficMatrix, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	n := len(t.Records)
	m := &TrafficMatrix{Ranks: t.Meta.Ranks}

	// Pair aggregation, keyed by directed rank pair. Records are in
	// canonical order, so iterating them makes the totals deterministic.
	pairIdx := make(map[int64]int)
	pairAt := func(src, dst int) *PairTraffic {
		k := int64(src)*int64(m.Ranks) + int64(dst)
		i, ok := pairIdx[k]
		if !ok {
			i = len(m.Pairs)
			pairIdx[k] = i
			m.Pairs = append(m.Pairs, PairTraffic{Src: src, Dst: dst})
		}
		return &m.Pairs[i]
	}
	m.RankCompute = make([]units.Time, m.Ranks)
	for _, r := range t.Records {
		switch r.Kind {
		case KindCompute:
			m.RankCompute[r.Rank] += r.Duration
		case KindSend:
			p := pairAt(r.Rank, r.Peer)
			p.Msgs++
			p.Bytes += r.Size
			m.Msgs++
			m.Bytes += r.Size
			if r.Size > eager {
				p.Rendezvous++
				m.Rendezvous++
			}
		}
	}
	for _, c := range m.RankCompute {
		if c > m.MaxRankCompute {
			m.MaxRankCompute = c
		}
	}

	// The send→recv edge table, exactly as validateMatching builds it
	// (the trace just validated, so matching cannot fail): sendOf[i] is
	// the matching send's record index for the recv at index i.
	sends := make(map[chanKey][]int)
	recvs := make(map[chanKey][]int)
	for i, r := range t.Records {
		switch r.Kind {
		case KindSend:
			k := chanKey{src: r.Rank, dst: r.Peer, tag: r.Tag}
			sends[k] = append(sends[k], i)
		case KindRecv:
			k := chanKey{src: r.Peer, dst: r.Rank, tag: r.Tag}
			recvs[k] = append(recvs[k], i)
		}
	}
	sendOf := make([]int, n)
	recvOf := make([]int, n) // the recv a send unblocks (validateAcyclic's sendEdge)
	for i := range sendOf {
		sendOf[i] = -1
		recvOf[i] = -1
	}
	for k, ss := range sends {
		for j, s := range ss {
			sendOf[recvs[k][j]] = s
			recvOf[s] = recvs[k][j]
		}
	}

	// Longest-chain DP in Kahn order over the same edge set
	// validateAcyclic schedules: each record's chain value is the best
	// over its program-order predecessor and (for a recv) its matching
	// send, a message edge adding (1 msg, its bytes); the record's own
	// compute is then folded in. The value at a node is fixed once all
	// predecessors are done, so the result is independent of queue
	// order. Ties prefer the program-order predecessor, making the
	// backtracked chain deterministic.
	chMsgs := make([]int64, n)
	chBytes := make([]units.Size, n)
	chComp := make([]units.Time, n)
	parent := make([]int, n)
	viaMsg := make([]bool, n)
	indeg := make([]int, n)
	for i, r := range t.Records {
		parent[i] = -1
		if r.Seq > 0 {
			indeg[i]++
		}
		if sendOf[i] >= 0 {
			indeg[i]++
		}
	}
	queue := make([]int, 0, n)
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	// better reports whether chain value a strictly beats b.
	better := func(am int64, ab units.Size, ac units.Time, bm int64, bb units.Size, bc units.Time) bool {
		if am != bm {
			return am > bm
		}
		if ab != bb {
			return ab > bb
		}
		return ac > bc
	}
	settle := func(i int) {
		r := t.Records[i]
		if r.Seq > 0 {
			p := i - 1 // canonical order: the rank's previous record
			chMsgs[i], chBytes[i], chComp[i], parent[i] = chMsgs[p], chBytes[p], chComp[p], p
		}
		if s := sendOf[i]; s >= 0 {
			cm, cb, cc := chMsgs[s]+1, chBytes[s]+r.Size, chComp[s]
			if parent[i] < 0 || better(cm, cb, cc, chMsgs[i], chBytes[i], chComp[i]) {
				chMsgs[i], chBytes[i], chComp[i] = cm, cb, cc
				parent[i], viaMsg[i] = s, true
			}
		}
		chComp[i] += r.Duration
	}
	for len(queue) > 0 {
		i := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		settle(i)
		if j := i + 1; j < n && t.Records[j].Rank == t.Records[i].Rank {
			if indeg[j]--; indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
		if e := recvOf[i]; e >= 0 {
			if indeg[e]--; indeg[e] == 0 {
				queue = append(queue, e)
			}
		}
	}

	// The chain end: the record with the maximal chain value (lowest
	// index on ties), backtracked through parent, marking each message
	// edge on its pair.
	end := -1
	for i := 0; i < n; i++ {
		if end < 0 || better(chMsgs[i], chBytes[i], chComp[i], chMsgs[end], chBytes[end], chComp[end]) {
			end = i
		}
	}
	if end >= 0 {
		m.CritMsgs, m.CritBytes, m.CritCompute = chMsgs[end], chBytes[end], chComp[end]
		for i := end; i >= 0; i = parent[i] {
			r := t.Records[i]
			if viaMsg[i] {
				// A crossed send→recv edge; r is the recv.
				p := pairAt(r.Peer, r.Rank)
				p.CritMsgs++
				p.CritBytes += r.Size
				if r.Size > eager {
					p.CritRdv++
					m.CritRdv++
				}
			}
			if r.Kind == KindSend {
				// A send record on the path: the blocking sender
				// serializes it whether or not the chain crosses it.
				p := pairAt(r.Rank, r.Peer)
				p.PathMsgs++
				p.PathBytes += r.Size
				if r.Size > eager {
					p.PathRdv++
				}
			}
		}
	}

	sort.Slice(m.Pairs, func(i, j int) bool {
		a, b := m.Pairs[i], m.Pairs[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Dst < b.Dst
	})
	return m, nil
}
