package trace

import (
	"testing"

	"roadrunner/internal/units"
)

// trafficOf computes the matrix or fails the test.
func trafficOf(t *testing.T, tr *Trace, eager units.Size) *TrafficMatrix {
	t.Helper()
	m, err := tr.Traffic(eager)
	if err != nil {
		t.Fatalf("traffic: %v", err)
	}
	return m
}

// pairOf finds the directed pair in the matrix or fails.
func pairOf(t *testing.T, m *TrafficMatrix, src, dst int) PairTraffic {
	t.Helper()
	for _, p := range m.Pairs {
		if p.Src == src && p.Dst == dst {
			return p
		}
	}
	t.Fatalf("pair %d->%d not in matrix", src, dst)
	return PairTraffic{}
}

// TestTrafficChainTotalsAndCriticalPath pins the matrix on the serial
// two-rank chain: every message is on the critical chain, and the chain
// compute is the sender's busy time plus nothing on the receiver.
func TestTrafficChainTotalsAndCriticalPath(t *testing.T) {
	sizes := []units.Size{8, 4 * units.KB, 64 * units.KB, 1 * units.MB}
	compute := 3 * units.Microsecond
	tr := chainTrace(t, sizes, compute)
	eager := units.Size(12 * units.KB)
	m := trafficOf(t, tr, eager)

	if m.Ranks != 2 || len(m.Pairs) != 1 {
		t.Fatalf("matrix shape: ranks %d pairs %d", m.Ranks, len(m.Pairs))
	}
	p := pairOf(t, m, 0, 1)
	var bytes units.Size
	var rdv int64
	for _, s := range sizes {
		bytes += s
		if s > eager {
			rdv++
		}
	}
	if p.Msgs != int64(len(sizes)) || p.Bytes != bytes || p.Rendezvous != rdv {
		t.Errorf("pair totals: %+v, want msgs %d bytes %v rdv %d", p, len(sizes), bytes, rdv)
	}
	if m.Msgs != p.Msgs || m.Bytes != p.Bytes || m.Rendezvous != p.Rendezvous {
		t.Errorf("matrix totals diverge from the only pair: %+v vs %+v", m, p)
	}
	// The receiver only receives, so every path into it crosses exactly
	// one message edge — the chain runs through the sender's whole
	// stream and enters on the edge with the most bytes (the DP's
	// tie-break), which is also above the eager threshold.
	if p.CritMsgs != 1 || p.CritBytes != 1*units.MB || p.CritRdv != 1 {
		t.Errorf("serial chain: crit %d/%v/%d, want 1/1MB/1",
			p.CritMsgs, p.CritBytes, p.CritRdv)
	}
	wantComp := units.Time(len(sizes)) * compute
	if m.CritCompute != wantComp {
		t.Errorf("crit compute %v, want %v", m.CritCompute, wantComp)
	}
	if m.MaxRankCompute != wantComp {
		t.Errorf("max rank compute %v, want %v", m.MaxRankCompute, wantComp)
	}
}

// TestTrafficRelayDepth pins the chain metric on a 4-rank relay with a
// fat side message: the relay is 3 message edges deep, so it beats the
// single bigger side transfer — message-edge count dominates bytes.
func TestTrafficRelayDepth(t *testing.T) {
	rec := NewRecorder("relay", "test", 5)
	// Relay 0 -> 1 -> 2 -> 3, small payloads.
	for i := 0; i < 3; i++ {
		rec.Send(i, i+1, 0, 1*units.KB, 0)
		rec.Recv(i+1, i, 0, 1*units.KB, 0)
	}
	// One much larger independent transfer 0 -> 4.
	rec.Send(0, 4, 1, 8*units.MB, 0)
	rec.Recv(4, 0, 1, 8*units.MB, 0)
	tr, err := rec.Trace()
	if err != nil {
		t.Fatal(err)
	}
	m := trafficOf(t, tr, 12*units.KB)
	if m.CritMsgs != 3 || m.CritBytes != 3*units.KB {
		t.Fatalf("relay chain: %d msgs %v bytes, want 3 msgs 3KB", m.CritMsgs, m.CritBytes)
	}
	for i := 0; i < 3; i++ {
		if p := pairOf(t, m, i, i+1); p.CritMsgs != 1 {
			t.Errorf("relay hop %d->%d: crit msgs %d, want 1", i, i+1, p.CritMsgs)
		}
	}
	if p := pairOf(t, m, 0, 4); p.CritMsgs != 0 || p.Msgs != 1 {
		t.Errorf("side transfer 0->4: crit %d of %d msgs, want 0 of 1", p.CritMsgs, p.Msgs)
	}
}

// TestTrafficPairsCanonicalOrder pins the Pairs ordering contract
// (Src-major, Dst-minor) on an all-to-all mesh — the surrogate's
// summation order, and therefore its float determinism, rides on it.
func TestTrafficPairsCanonicalOrder(t *testing.T) {
	const ranks = 5
	rec := NewRecorder("mesh", "test", ranks)
	// Phase by phase so matching stays FIFO per channel.
	for s := 0; s < ranks; s++ {
		for d := 0; d < ranks; d++ {
			if s == d {
				continue
			}
			rec.Send(s, d, s*ranks+d, 2*units.KB, 0)
		}
	}
	for d := 0; d < ranks; d++ {
		for s := 0; s < ranks; s++ {
			if s == d {
				continue
			}
			rec.Recv(d, s, s*ranks+d, 2*units.KB, 0)
		}
	}
	tr, err := rec.Trace()
	if err != nil {
		t.Fatal(err)
	}
	m := trafficOf(t, tr, 12*units.KB)
	if want := ranks * (ranks - 1); len(m.Pairs) != want {
		t.Fatalf("%d pairs, want %d", len(m.Pairs), want)
	}
	for i := 1; i < len(m.Pairs); i++ {
		a, b := m.Pairs[i-1], m.Pairs[i]
		if a.Src > b.Src || (a.Src == b.Src && a.Dst >= b.Dst) {
			t.Fatalf("pairs out of canonical order at %d: %+v then %+v", i, a, b)
		}
	}
}

// TestTrafficInvalidTraceErrors: the matrix of an invalid trace is an
// error, not a panic.
func TestTrafficInvalidTraceErrors(t *testing.T) {
	tr := &Trace{Meta: Meta{Name: "bad", Ranks: 2}, Records: []Record{
		{Rank: 0, Seq: 0, Kind: KindSend, Peer: 1, Size: 8, Dep: NoDep},
	}}
	if _, err := tr.Traffic(12 * units.KB); err == nil {
		t.Fatal("unmatched send produced a matrix")
	}
}
