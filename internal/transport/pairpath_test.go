package transport

import (
	"testing"

	"roadrunner/internal/fabric"
	"roadrunner/internal/ib"
	"roadrunner/internal/params"
	"roadrunner/internal/sim"
	"roadrunner/internal/units"
)

// pairSample returns a deterministic spread of distinct node pairs on a
// 2-CU system: same-crossbar, same-CU cross-crossbar, cross-CU
// same-index, cross-CU different-crossbar, and a handful of strided
// pairs to reach every link kind a topology routes through.
func pairSample() [][2]fabric.NodeID {
	pairs := [][2]fabric.NodeID{
		{{CU: 0, Node: 0}, {CU: 0, Node: 1}},
		{{CU: 0, Node: 2}, {CU: 0, Node: 170}},
		{{CU: 0, Node: 3}, {CU: 1, Node: 3}},
		{{CU: 0, Node: 9}, {CU: 1, Node: 100}},
		{{CU: 1, Node: 177}, {CU: 0, Node: 40}},
	}
	for i := 0; i < params.NodesPerCU; i += 17 {
		pairs = append(pairs, [2]fabric.NodeID{
			{CU: 0, Node: i}, {CU: 1, Node: (i*7 + 3) % params.NodesPerCU},
		})
	}
	return pairs
}

// TestPairPathAdmissionOrderPerTopology pins, for every registered
// topology, the contract internal/surrogate folds offered load over:
// AdmissionLinks returns exactly the fabric route minus the node-port
// cables, sorted ascending by Link.Key() — the global acquisition order
// Pending.admit takes them in. A route-cache refactor that reorders or
// re-members the admission set would silently skew the analytic model;
// this test makes it loud.
func TestPairPathAdmissionOrderPerTopology(t *testing.T) {
	for _, name := range fabric.Topologies() {
		name := name
		t.Run(name, func(t *testing.T) {
			fab := topoSystem(t, name, 2)
			eng := sim.NewEngine()
			defer eng.Close()
			net := New(eng, fab, ib.OpenMPI(), Congested())
			for _, pr := range pairSample() {
				src, dst := pr[0], pr[1]
				pp := net.PairPath(src, dst)
				route := fab.Route(src, dst)

				// Membership: the admission set is the route's
				// fabric-interior links, node ports dropped (the ib HCA
				// model already bills that copper).
				want := map[uint64]fabric.Link{}
				nodePorts := 0
				for _, l := range route {
					if l.Kind == fabric.LinkNodePort {
						nodePorts++
						continue
					}
					want[l.Key()] = l
				}
				got := pp.AdmissionLinks(nil)
				if len(got) != len(want) {
					t.Fatalf("%s -> %s: %d admission links, route has %d interior links",
						src, dst, len(got), len(want))
				}
				for _, l := range got {
					if _, ok := want[l.Key()]; !ok {
						t.Fatalf("%s -> %s: admission link %v not on the route", src, dst, l)
					}
					if l.Kind == fabric.LinkNodePort {
						t.Fatalf("%s -> %s: node-port cable %v admission-controlled", src, dst, l)
					}
				}
				if nodePorts == 0 {
					t.Fatalf("%s -> %s: route carries no node-port cable", src, dst)
				}

				// Order: strictly ascending by Key — the deadlock-free
				// total acquisition order.
				for i := 1; i < len(got); i++ {
					if got[i-1].Key() >= got[i].Key() {
						t.Fatalf("%s -> %s: admission order not strictly ascending at %d: %v then %v",
							src, dst, i, got[i-1], got[i])
					}
				}

				// The buf form appends.
				pre := []fabric.Link{route[0]}
				ext := pp.AdmissionLinks(pre)
				if len(ext) != 1+len(got) || ext[0] != route[0] {
					t.Fatalf("%s -> %s: AdmissionLinks did not append to buf", src, dst)
				}
			}
		})
	}
}

// TestPairPathTimingAccessorsPerTopology pins the exported latency
// decomposition against the fabric's own hop count and the profile
// arithmetic the transfer path charges.
func TestPairPathTimingAccessorsPerTopology(t *testing.T) {
	prof := ib.OpenMPI()
	for _, name := range fabric.Topologies() {
		name := name
		t.Run(name, func(t *testing.T) {
			fab := topoSystem(t, name, 2)
			eng := sim.NewEngine()
			defer eng.Close()
			net := New(eng, fab, prof, Congested())
			for _, pr := range pairSample() {
				src, dst := pr[0], pr[1]
				pp := net.PairPath(src, dst)
				if want := fab.Hops(src, dst); pp.Hops() != want {
					t.Errorf("%s -> %s: Hops %d, fabric says %d", src, dst, pp.Hops(), want)
				}
				if want := units.Time(pp.Hops()) * prof.HopLatency; pp.FabricLatency() != want {
					t.Errorf("%s -> %s: FabricLatency %v, want %v", src, dst, pp.FabricLatency(), want)
				}
				if want := 2 * (2*prof.PerSideOverhead + pp.FabricLatency()); pp.RendezvousExtra() != want {
					t.Errorf("%s -> %s: RendezvousExtra %v, want %v", src, dst, pp.RendezvousExtra(), want)
				}
			}
		})
	}
}

// TestPairPathAdmissionEmptyWhenCongestionOff pins the congestion-off
// shape: no link state exists, so the admission set is empty while the
// timing accessors still resolve.
func TestPairPathAdmissionEmptyWhenCongestionOff(t *testing.T) {
	eng := sim.NewEngine()
	defer eng.Close()
	net := New(eng, fabric.NewScaled(2), ib.OpenMPI(), Policy{})
	pp := net.PairPath(fabric.NodeID{CU: 0, Node: 0}, fabric.NodeID{CU: 1, Node: 100})
	if ls := pp.AdmissionLinks(nil); len(ls) != 0 {
		t.Errorf("congestion-off admission set: %v, want empty", ls)
	}
	if pp.Hops() <= 0 || pp.FabricLatency() <= 0 {
		t.Errorf("timing accessors empty off-path: hops %d lat %v", pp.Hops(), pp.FabricLatency())
	}
}
