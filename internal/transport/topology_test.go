package transport

import (
	"testing"

	"roadrunner/internal/fabric"
	"roadrunner/internal/ib"
	"roadrunner/internal/params"
	"roadrunner/internal/sim"
	"roadrunner/internal/units"
)

// topoSystem builds the named topology at the given scale or fails.
func topoSystem(t *testing.T, name string, cus int) *fabric.System {
	t.Helper()
	s, err := fabric.NewTopologyScaled(name, cus)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCrossDomainLookaheadDerivedPerTopology pins the satellite fix:
// the conservative window floor comes from the topology's minimum
// cross-CU route, not a hard-coded fat-tree constant. The fat-tree
// family keeps the legacy 3-crossbar floor; the torus — whose CU-major
// numbering puts neighboring routers in different CUs — gets a smaller
// (2-router) floor, which the old constant would have overstated,
// silently corrupting windowed runs.
func TestCrossDomainLookaheadDerivedPerTopology(t *testing.T) {
	prof := ib.OpenMPI()
	legacy := prof.PerSideOverhead + 3*prof.HopLatency
	for _, name := range fabric.Topologies() {
		fab := topoSystem(t, name, 2)
		got := CrossDomainLookahead(fab, prof)
		want := prof.PerSideOverhead + units.Time(fab.MinCrossDomainRoute())*prof.HopLatency
		if got != want {
			t.Errorf("%s: lookahead %v, want %v", name, got, want)
		}
		switch name {
		case "torus":
			if got >= legacy {
				t.Errorf("torus: lookahead %v not below the fat-tree constant %v", got, legacy)
			}
		default:
			if got != legacy {
				t.Errorf("%s: lookahead %v differs from the fat-tree floor %v", name, got, legacy)
			}
		}
	}
}

// minCrossCUPair returns the cross-CU pair with the fewest hops on a
// 2-CU system (exhaustive scan), the worst case for the lookahead.
func minCrossCUPair(fab *fabric.System) (a, b fabric.NodeID, hops int) {
	hops = -1
	for i := 0; i < params.NodesPerCU; i++ {
		for j := 0; j < params.NodesPerCU; j++ {
			na, nb := fabric.NodeID{CU: 0, Node: i}, fabric.NodeID{CU: 1, Node: j}
			if h := fab.Hops(na, nb); hops < 0 || h < hops {
				a, b, hops = na, nb, h
			}
		}
	}
	return a, b, hops
}

// TestLookaheadSafePerTopology is the per-topology lookahead-violation
// test: (1) the fastest cross-CU transfer the transport can generate
// delivers no earlier than the derived lookahead, so windows computed
// from it are safe; (2) a windowed sim.Cluster accepts a send at
// exactly the derived lookahead and panics with *LookaheadViolation
// one tick below it — the floor is tight, not slack.
func TestLookaheadSafePerTopology(t *testing.T) {
	prof := ib.OpenMPI()
	for _, name := range fabric.Topologies() {
		fab := topoSystem(t, name, 2)
		la := CrossDomainLookahead(fab, prof)
		src, dst, hops := minCrossCUPair(fab)

		// The fastest cross-domain influence: a zero-byte transfer on
		// the minimum route. Its delivery fires after send-side
		// overhead + fabric latency + receive-side overhead, which must
		// not undercut the lookahead.
		eng := sim.NewEngine()
		var delivered units.Time
		net := New(eng, fab, prof, Policy{})
		eng.Spawn("probe", func(p *sim.Proc) {
			net.Transfer(p, Endpoint{Node: src, Core: 1}, Endpoint{Node: dst, Core: 1}, 0,
				func() { delivered = eng.Now() })
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		eng.Close()
		if delivered < la {
			t.Errorf("%s: %d-hop transfer delivered at %v, under lookahead %v — unsafe window",
				name, hops, delivered, la)
		}

		// The cluster enforces the same floor: at the lookahead the send
		// is accepted, below it the violation panics.
		c := sim.NewCluster(2, la)
		c.Send(0, 1, la, func() {})
		func() {
			defer func() {
				if _, ok := recover().(*sim.LookaheadViolation); !ok {
					t.Errorf("%s: no LookaheadViolation for delay below the %v floor", name, la)
				}
			}()
			c.Send(0, 1, la-1, func() {})
		}()
	}
}

// TestRouteCacheSizedByTopology pins the satellite fix for the dense
// route cache: rows and keys come from the topology interface. The
// torus keys per node (its routers are per-node), so a source whose
// global id exceeds the fat-tree's crossbar-count sizing must resolve
// without indexing out of the table — exactly what the old
// CUs*LineXbarsPerCU sizing would have crashed (or silently aliased)
// on.
func TestRouteCacheSizedByTopology(t *testing.T) {
	fab := topoSystem(t, "torus", params.NumCUs)
	if fab.CacheRows() <= fab.CUs*fabric.LineXbarsPerCU {
		t.Fatalf("torus cache rows %d not beyond fat-tree sizing %d — test is vacuous",
			fab.CacheRows(), fab.CUs*fabric.LineXbarsPerCU)
	}
	eng := sim.NewEngine()
	defer eng.Close()
	net := New(eng, fab, ib.OpenMPI(), Congested())
	// The last node of the machine: CacheKey 3059 on the torus, far past
	// the 408 crossbar rows of the fat-tree geometry.
	src := fabric.NodeID{CU: params.NumCUs - 1, Node: params.NodesPerCU - 1}
	dst := fabric.NodeID{CU: 0, Node: 0}
	xp := net.xpath(src, dst)
	want := units.Time(fab.Hops(src, dst)) * ib.OpenMPI().HopLatency
	if xp.fabLat != want {
		t.Errorf("torus xpath fabric latency %v, want %v", xp.fabLat, want)
	}
	if len(xp.states) != fab.Hops(src, dst)-1 {
		t.Errorf("torus xpath carries %d interior links, want %d (one per router-to-router cable)",
			len(xp.states), fab.Hops(src, dst)-1)
	}
}

// TestCacheHitNeverCrossesTopologies is the regression the satellite
// asks for: one topology's cache entry can never serve another's path.
// Each Net derives from its own fabric, so the same (src, dst) pair
// must yield each topology's own hop latency and link interior — pinned
// by comparing against the owning fabric, on a pair whose routes differ
// across every tree/torus split.
func TestCacheHitNeverCrossesTopologies(t *testing.T) {
	prof := ib.OpenMPI()
	src := fabric.NodeID{CU: 0, Node: 9}
	dst := fabric.NodeID{CU: 1, Node: 100}
	seen := map[string]units.Time{}
	for _, name := range fabric.Topologies() {
		fab := topoSystem(t, name, 2)
		eng := sim.NewEngine()
		net := New(eng, fab, prof, Congested())
		xp := net.xpath(src, dst)
		if want := units.Time(fab.Hops(src, dst)) * prof.HopLatency; xp.fabLat != want {
			t.Errorf("%s: cached fabric latency %v, want the owning fabric's %v", name, xp.fabLat, want)
		}
		// Every cached interior link must be a link of this topology's
		// own route — not a path leaked from another fabric's geometry.
		route := map[uint64]bool{}
		for _, l := range fab.Route(src, dst) {
			route[l.Key()] = true
		}
		for _, st := range xp.states {
			if !route[st.link.Key()] {
				t.Errorf("%s: cache holds link %v that is not on this topology's route", name, st.link)
			}
		}
		seen[name] = xp.fabLat
		eng.Close()
	}
	if seen["fattree"] == seen["torus"] {
		t.Errorf("fat-tree and torus agree on fabric latency %v for %v->%v — pair cannot distinguish topologies",
			seen["fattree"], src, dst)
	}
}

// TestSharedCacheRowsPerTopologyGranularity pins the cache-key
// granularity: fat-tree sources on one line crossbar share the cached
// entry (same *xbarPath), while torus sources — each with its own
// router — never do.
func TestSharedCacheRowsPerTopologyGranularity(t *testing.T) {
	prof := ib.OpenMPI()
	dst := fabric.NodeID{CU: 1, Node: 42}
	a, b := fabric.NodeID{CU: 0, Node: 0}, fabric.NodeID{CU: 0, Node: 1} // same crossbar
	{
		eng := sim.NewEngine()
		net := New(eng, topoSystem(t, "fattree", 2), prof, Congested())
		if net.xpath(a, dst) != net.xpath(b, dst) {
			t.Error("fattree: same-crossbar sources do not share the cache entry")
		}
		eng.Close()
	}
	{
		eng := sim.NewEngine()
		net := New(eng, topoSystem(t, "torus", 2), prof, Congested())
		if net.xpath(a, dst) == net.xpath(b, dst) {
			t.Error("torus: distinct routers share a cache entry")
		}
		eng.Close()
	}
}
