// Package transport owns the routed message path between nodes of the
// Roadrunner interconnect: the MPI software overheads, the
// eager/rendezvous protocol switch, the HCA streaming of internal/ib,
// and — new with this layer — link-level congestion over the explicit
// cable topology of internal/fabric.
//
// Point-to-point plumbing used to live inside internal/collectives as
// private send/recv helpers charging per-hop latency against an
// infinitely capacious fabric: two messages crossing the same uplink
// never queued, so the 2:1 taper at the CU uplinks could not throttle
// anything. Transfer instead routes every message over fabric.Route and,
// when the congestion policy is enabled, holds a sim.Resource-backed
// channel on every fabric-interior link of the route (spine, uplink and
// switch-internal cables — node ports belong to the ib adapter model;
// see acquire) while the payload streams: concurrent flows crossing the
// same cable serialize, exactly the mechanism a wormhole-routed fabric
// exhibits when the reduced fat tree saturates.
//
// The no-contention timing is unchanged from the PR 2 model: link
// channels are acquired before the HCA stream and released after it, so
// a flow that never queues sleeps through exactly the same event
// sequence as the unrouted path. With congestion off — or with the link
// capacity unlimited, the "infinite-capacity fabric" — results are
// byte-identical to the legacy model; the invariant is pinned by
// TestInfiniteCapacityMatchesOffPath here and, across every collective
// algorithm, by collectives.TestInfiniteCapacityReproducesLegacyModel.
//
// Endpoint flow accounting (ib.HCA sharing, duplex caps) composes with
// link occupancy rather than being replaced by it: the stream rate is
// still set chunk-by-chunk by the two adapters, while the links bound
// which flows can be on the wire at all.
package transport

import (
	"fmt"
	"sort"

	"roadrunner/internal/fabric"
	"roadrunner/internal/ib"
	"roadrunner/internal/sim"
	"roadrunner/internal/units"
)

// unlimited is the effective capacity of an infinite-capacity link
// channel (admission never blocks, occupancy is still tracked).
const unlimited = 1 << 30

// Policy configures link-level congestion.
type Policy struct {
	// Enabled routes every payload-carrying message over the cable
	// topology and accounts per-link occupancy. Off (the zero value)
	// reproduces the unrouted PR 2 path with no link state at all.
	Enabled bool
	// Channels is how many messages one directed link channel carries
	// concurrently before later flows queue. 1 models wormhole circuits
	// (concurrent flows on a cable serialize); <= 0 means unlimited —
	// the infinite-capacity fabric, which keeps the census but never
	// queues and therefore reproduces the legacy latency model exactly.
	Channels int
}

// Congested returns the default congestion policy: every cable a single
// wormhole channel per direction.
func Congested() Policy { return Policy{Enabled: true, Channels: 1} }

// InfiniteCapacity returns the routed policy with unlimited link
// capacity: occupancy is observed, nothing ever queues.
func InfiniteCapacity() Policy { return Policy{Enabled: true} }

// Endpoint locates one side of a transfer: the node and the Opteron core
// the MPI call issues from (HCA proximity per Fig. 8).
type Endpoint struct {
	Node fabric.NodeID
	Core int
}

// linkState is one directed link channel: its admission resource plus
// traffic counters.
type linkState struct {
	link  fabric.Link
	res   *sim.Resource
	msgs  int64
	bytes units.Size
}

// Net is the per-engine transport instance: it owns the node HCAs and
// the lazily materialized link states of one simulation run.
type Net struct {
	eng  *sim.Engine
	fab  *fabric.System
	prof ib.Profile
	pol  Policy

	hcas  map[fabric.NodeID]*ib.HCA
	links map[uint64]*linkState

	msgs int64
	wire units.Size
}

// New creates a transport instance on the engine.
func New(eng *sim.Engine, fab *fabric.System, prof ib.Profile, pol Policy) *Net {
	if fab == nil {
		panic("transport: nil fabric")
	}
	n := &Net{
		eng:  eng,
		fab:  fab,
		prof: prof,
		pol:  pol,
		hcas: make(map[fabric.NodeID]*ib.HCA),
	}
	if pol.Enabled {
		n.links = make(map[uint64]*linkState)
	}
	return n
}

// Policy returns the congestion policy the net runs under.
func (n *Net) Policy() Policy { return n.pol }

// HCA returns (creating on first use) the node's adapter.
func (n *Net) HCA(node fabric.NodeID) *ib.HCA {
	h, ok := n.hcas[node]
	if !ok {
		h = ib.NewHCA(n.eng, n.prof)
		n.hcas[node] = h
	}
	return h
}

// Messages returns the number of transfers started, including intra-node
// shared-memory messages.
func (n *Net) Messages() int64 { return n.msgs }

// WireBytes returns the payload bytes that crossed the fabric
// (intra-node messages excluded).
func (n *Net) WireBytes() units.Size { return n.wire }

// state returns (creating on first use) the link's channel state.
func (n *Net) state(l fabric.Link) *linkState {
	k := l.Key()
	st, ok := n.links[k]
	if !ok {
		capacity := n.pol.Channels
		if capacity <= 0 {
			capacity = unlimited
		}
		st = &linkState{link: l, res: sim.NewResource(n.eng, l.String(), capacity)}
		n.links[k] = st
	}
	return st
}

// Transfer blocks the calling proc for the sender-visible cost of moving
// size bytes from src to dst — MPI software overhead, the rendezvous
// round trip above the eager threshold, link admission along the route,
// and the payload stream through both endpoints' HCAs — then schedules
// deliver after the fabric traversal and the receive-side overhead.
// Intra-node transfers take the shared-memory path: software overhead on
// each side, nothing on the fabric.
func (n *Net) Transfer(p *sim.Proc, src, dst Endpoint, size units.Size, deliver func()) {
	n.msgs++
	pr := n.prof
	if src.Node == dst.Node {
		p.Sleep(pr.PerSideOverhead)
		n.eng.Schedule(pr.PerSideOverhead, deliver)
		return
	}
	n.wire += size
	hops := n.fab.Hops(src.Node, dst.Node)
	fabLat := units.Time(hops) * pr.HopLatency
	p.Sleep(pr.PerSideOverhead)
	if size > pr.EagerThreshold {
		// Rendezvous request + clear-to-send at zero payload.
		p.Sleep(2 * (2*pr.PerSideOverhead + fabLat))
	}
	if size > 0 {
		pairBW := pr.PairBandwidth(src.Core, dst.Core)
		if n.pol.Enabled {
			var lbuf [fabric.RouteMax]fabric.Link
			var sbuf [fabric.RouteMax]*linkState
			route := n.fab.RouteInto(lbuf[:0], src.Node, dst.Node)
			held := n.acquire(p, route, sbuf[:0], size)
			ib.StreamBetween(p, n.HCA(src.Node), n.HCA(dst.Node), size, pairBW)
			release(held)
		} else {
			ib.StreamBetween(p, n.HCA(src.Node), n.HCA(dst.Node), size, pairBW)
		}
	}
	n.eng.Schedule(fabLat+pr.PerSideOverhead, deliver)
}

// acquire admits the message onto every fabric-interior link of its
// route, blocking behind flows already holding a channel. Links are
// acquired in the global Key order — every flow uses the same total
// order, so the hold-and-wait graph is acyclic and admission can never
// deadlock.
//
// Node-port cables are routed but not admission-controlled: that wire is
// the adapter's own port, whose sharing the ib HCA flow model already
// charges (multi-flow serialization, duplex caps). Gating it here too
// would bill the same copper twice; the transport owns the
// crossbar-to-crossbar tiers the HCA cannot see.
func (n *Net) acquire(p *sim.Proc, route []fabric.Link, states []*linkState, size units.Size) []*linkState {
	for _, l := range route {
		if l.Kind == fabric.LinkNodePort {
			continue
		}
		states = append(states, n.state(l))
	}
	// Insertion sort by key: routes are at most RouteMax links.
	for i := 1; i < len(states); i++ {
		for j := i; j > 0 && states[j].link.Key() < states[j-1].link.Key(); j-- {
			states[j], states[j-1] = states[j-1], states[j]
		}
	}
	for _, st := range states {
		st.res.Acquire(p, 1)
		st.msgs++
		st.bytes += size
	}
	return states
}

// release returns every held channel.
func release(states []*linkState) {
	for _, st := range states {
		st.res.Release(1)
	}
}

// LinkUsage reports one link channel's traffic and occupancy.
type LinkUsage struct {
	Link     fabric.Link
	Messages int64      // flows admitted onto the channel
	Bytes    units.Size // payload bytes carried
	PeakHeld int        // peak concurrent flows on the channel
	Queued   int64      // flows that had to wait for admission
	Wait     units.Time // total queueing delay behind the channel
	Busy     units.Time // time the channel had at least one flow
	// MeanQueue is the time-averaged admission queue length and
	// Utilization the busy fraction, both over the census horizon.
	MeanQueue   float64
	Utilization float64
}

// String renders the usage the way the CLI contention reports print it.
func (u LinkUsage) String() string {
	return fmt.Sprintf("%-28s %9d msgs %10s  wait %-10s util %5.1f%%  queue %.2f",
		u.Link, u.Messages, u.Bytes, u.Wait, 100*u.Utilization, u.MeanQueue)
}

// Census summarises link occupancy over one run.
type Census struct {
	// Horizon is the simulated instant the census was taken (the run's
	// makespan); utilizations are relative to it.
	Horizon units.Time
	// Links is the number of distinct directed link channels that
	// carried at least one flow.
	Links int
	// Queued counts flow admissions that had to wait, TotalWait their
	// cumulative queueing delay.
	Queued    int64
	TotalWait units.Time
	// PeakHeld is the highest concurrent flow count on any channel.
	PeakHeld int
	// Top holds the most contended channels, hottest first (by total
	// wait, then bytes carried, then link order).
	Top []LinkUsage
	// The uplink tier — the 2:1-tapered cables between the CUs and the
	// inter-CU switches — reported separately, so taper pressure is
	// distinguishable from middle-stage switch contention: queued flows
	// and wait on uplink cables only, and the hottest uplinks.
	UplinkQueued int64
	UplinkWait   units.Time
	TopUplinks   []LinkUsage
}

// Hotter is the census ranking: total wait first, bytes carried second,
// and — so that the top-N output is fully deterministic under ties —
// the link's total order (Key) as the final criterion. The census
// gathers links from a map, whose iteration order varies run to run;
// because Hotter is a strict total order (no two distinct links share a
// Key), the sorted output is identical regardless of input order, which
// the equal-occupancy regression test pins.
func Hotter(a, b LinkUsage) bool {
	if a.Wait != b.Wait {
		return a.Wait > b.Wait
	}
	if a.Bytes != b.Bytes {
		return a.Bytes > b.Bytes
	}
	return a.Link.Key() < b.Link.Key()
}

// Census builds the link census, with the top contended links ranked
// hottest first. A nil receiver or a congestion-off net returns nil.
func (n *Net) Census(top int) *Census {
	if n == nil || n.links == nil {
		return nil
	}
	c := &Census{Horizon: n.eng.Now()}
	all := make([]LinkUsage, 0, len(n.links))
	var uplinks []LinkUsage
	for _, st := range n.links {
		s := st.res.Stats()
		u := LinkUsage{
			Link:        st.link,
			Messages:    st.msgs,
			Bytes:       st.bytes,
			PeakHeld:    s.PeakInUse,
			Queued:      s.Contended,
			Wait:        s.WaitTime,
			Busy:        s.BusyTime,
			MeanQueue:   s.MeanQueue(c.Horizon),
			Utilization: s.Utilization(c.Horizon),
		}
		c.Links++
		c.Queued += u.Queued
		c.TotalWait += u.Wait
		if u.PeakHeld > c.PeakHeld {
			c.PeakHeld = u.PeakHeld
		}
		if u.Link.Kind == fabric.LinkUplink {
			c.UplinkQueued += u.Queued
			c.UplinkWait += u.Wait
			uplinks = append(uplinks, u)
		}
		all = append(all, u)
	}
	sort.Slice(all, func(i, j int) bool { return Hotter(all[i], all[j]) })
	sort.Slice(uplinks, func(i, j int) bool { return Hotter(uplinks[i], uplinks[j]) })
	if top < len(all) {
		all = all[:top]
	}
	if top < len(uplinks) {
		uplinks = uplinks[:top]
	}
	c.Top = all[:len(all):len(all)]
	c.TopUplinks = uplinks[:len(uplinks):len(uplinks)]
	return c
}
