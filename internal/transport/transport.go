// Package transport owns the routed message path between nodes of the
// Roadrunner interconnect: the MPI software overheads, the
// eager/rendezvous protocol switch, the HCA streaming of internal/ib,
// and — new with this layer — link-level congestion over the explicit
// cable topology of internal/fabric.
//
// Point-to-point plumbing used to live inside internal/collectives as
// private send/recv helpers charging per-hop latency against an
// infinitely capacious fabric: two messages crossing the same uplink
// never queued, so the 2:1 taper at the CU uplinks could not throttle
// anything. Transfer instead routes every message over fabric.Route and,
// when the congestion policy is enabled, holds a sim.Resource-backed
// channel on every fabric-interior link of the route (spine, uplink and
// switch-internal cables — node ports belong to the ib adapter model;
// see acquire) while the payload streams: concurrent flows crossing the
// same cable serialize, exactly the mechanism a wormhole-routed fabric
// exhibits when the reduced fat tree saturates.
//
// The no-contention timing is unchanged from the PR 2 model: link
// channels are acquired before the HCA stream and released after it, so
// a flow that never queues sleeps through exactly the same event
// sequence as the unrouted path. With congestion off — or with the link
// capacity unlimited, the "infinite-capacity fabric" — results are
// byte-identical to the legacy model; the invariant is pinned by
// TestInfiniteCapacityMatchesOffPath here and, across every collective
// algorithm, by collectives.TestInfiniteCapacityReproducesLegacyModel.
//
// Endpoint flow accounting (ib.HCA sharing, duplex caps) composes with
// link occupancy rather than being replaced by it: the stream rate is
// still set chunk-by-chunk by the two adapters, while the links bound
// which flows can be on the wire at all.
package transport

import (
	"fmt"
	"sort"

	"roadrunner/internal/fabric"
	"roadrunner/internal/ib"
	"roadrunner/internal/sim"
	"roadrunner/internal/units"
)

// unlimited is the effective capacity of an infinite-capacity link
// channel (admission never blocks, occupancy is still tracked).
const unlimited = 1 << 30

// Policy configures link-level congestion.
type Policy struct {
	// Enabled routes every payload-carrying message over the cable
	// topology and accounts per-link occupancy. Off (the zero value)
	// reproduces the unrouted PR 2 path with no link state at all.
	Enabled bool
	// Channels is how many messages one directed link channel carries
	// concurrently before later flows queue. 1 models wormhole circuits
	// (concurrent flows on a cable serialize); <= 0 means unlimited —
	// the infinite-capacity fabric, which keeps the census but never
	// queues and therefore reproduces the legacy latency model exactly.
	Channels int
}

// CrossDomainLookahead returns the conservative-PDES lookahead the
// fabric topology guarantees between CU domains: any cross-CU
// interaction pays at least one MPI/HCA per-side overhead plus the
// topology's minimum cross-CU route of cable latency before it can
// influence another domain (fabric.System.MinCrossDomainRoute — three
// crossbars on the fat-tree family per Table I, two routers on the
// torus). sim.Cluster windows computed from this floor are safe for
// any traffic the transport can generate on that fabric; an earlier
// version hard-coded the fat-tree's 3 crossbars, which would have
// over-promised the window on any shorter-diameter topology.
func CrossDomainLookahead(fab *fabric.System, prof ib.Profile) units.Time {
	return prof.PerSideOverhead + units.Time(fab.MinCrossDomainRoute())*prof.HopLatency
}

// Congested returns the default congestion policy: every cable a single
// wormhole channel per direction.
func Congested() Policy { return Policy{Enabled: true, Channels: 1} }

// InfiniteCapacity returns the routed policy with unlimited link
// capacity: occupancy is observed, nothing ever queues.
func InfiniteCapacity() Policy { return Policy{Enabled: true} }

// Endpoint locates one side of a transfer: the node and the Opteron core
// the MPI call issues from (HCA proximity per Fig. 8).
type Endpoint struct {
	Node fabric.NodeID
	Core int
}

// linkState is one directed link channel: its admission resource plus
// traffic counters.
type linkState struct {
	link  fabric.Link
	res   *sim.Resource
	msgs  int64
	bytes units.Size
}

// xbarPathInlineLinks is the most fabric-interior (admission-controlled)
// links a fat-tree route carries: cross-side, different crossbar index —
// uplink up, four switch-internal segments, uplink down. Node-port
// cables are excluded from admission (see Pending.admit), and in-CU
// routes carry at most two spine segments. Longer-diameter topologies
// (the torus) spill past the inline array into a heap slice, paid once
// per cache entry at derive time.
const xbarPathInlineLinks = 6

// xbarPath is the cached routing work shared by every source node of one
// cache row toward one destination node: the hop-latency term, the
// rendezvous round trip, and — with congestion enabled — the route's
// fabric-interior link states already resolved and sorted into the
// global acquisition order. Rows are keyed by the topology's CacheKey,
// whose contract (two sources with one key share every route interior)
// is exactly what makes the shared entry exact: the fat-tree keys by
// line crossbar — 408 crossbars x 3,060 nodes ≈ 1.2M value-typed
// entries in dense rows, where the former per-pair map held 9.4M heap
// entries whose GC footprint dominated full-machine sweeps — while the
// per-node-router torus keys by node.
type xbarPath struct {
	fabLat   units.Time // hop count x hop latency
	rdvExtra units.Time // rendezvous round trip above the eager threshold
	hops     int        // crossbar traversals on the route (len(route)-1)
	derived  bool
	// states is the route's admission-controlled links in acquisition
	// order, backed by inline until a route outgrows it.
	states []*linkState
	inline [xbarPathInlineLinks]*linkState
}

// PairPath is the resolved routing work for one directed (src, dst) node
// pair: the shared crossbar-granular route entry plus the endpoint
// adapters. Callers that key transfers by an index of their own (the
// replay evaluator holds one per rank pair) resolve it once and skip
// every per-message lookup.
type PairPath struct {
	xp       *xbarPath
	src, dst *ib.HCA // endpoint adapters
}

// Net is the per-engine transport instance: it owns the node HCAs and
// the lazily materialized link states of one simulation run.
type Net struct {
	eng  *sim.Engine
	fab  *fabric.System
	prof ib.Profile
	pol  Policy

	hcas   []*ib.HCA // by destination global node id, nil until used
	links  map[uint64]*linkState
	xpaths [][]xbarPath  // by source cache key (fabric CacheKey), rows nil until used
	rbuf   []fabric.Link // route scratch, sized to the topology's MaxRouteLen
	xfers  *Pending      // free list of chained-transfer state machines

	msgs int64
	wire units.Size
}

// New creates a transport instance on the engine.
func New(eng *sim.Engine, fab *fabric.System, prof ib.Profile, pol Policy) *Net {
	if fab == nil {
		panic("transport: nil fabric")
	}
	n := &Net{
		eng:    eng,
		fab:    fab,
		prof:   prof,
		pol:    pol,
		hcas:   make([]*ib.HCA, fab.Nodes()),
		xpaths: make([][]xbarPath, fab.CacheRows()),
		rbuf:   make([]fabric.Link, 0, fab.MaxRouteLen()),
	}
	if pol.Enabled {
		n.links = make(map[uint64]*linkState)
	}
	return n
}

// Reset zeroes every traffic counter — transport totals, per-link
// occupancy and the endpoint HCA flow accounting — while keeping the
// HCA table, the link-state map (with their sim.Resource objects) and
// the route cache intact, so a pooled Net replays a fresh run without
// rebuilding any per-link state. Call it alongside sim.Engine.Reset;
// everything must be idle (no flows streaming, no admissions held).
func (n *Net) Reset() {
	n.msgs = 0
	n.wire = 0
	for _, st := range n.links {
		st.msgs = 0
		st.bytes = 0
		st.res.ResetStats()
	}
	for _, h := range n.hcas {
		if h != nil {
			h.ResetStats()
		}
	}
}

// Policy returns the congestion policy the net runs under.
func (n *Net) Policy() Policy { return n.pol }

// HCA returns (creating on first use) the node's adapter.
func (n *Net) HCA(node fabric.NodeID) *ib.HCA {
	g := node.GlobalID()
	h := n.hcas[g]
	if h == nil {
		h = ib.NewHCA(n.eng, n.prof)
		n.hcas[g] = h
	}
	return h
}

// Messages returns the number of transfers started, including intra-node
// shared-memory messages.
func (n *Net) Messages() int64 { return n.msgs }

// WireBytes returns the payload bytes that crossed the fabric
// (intra-node messages excluded).
func (n *Net) WireBytes() units.Size { return n.wire }

// state returns (creating on first use) the link's channel state.
func (n *Net) state(l fabric.Link) *linkState {
	k := l.Key()
	st, ok := n.links[k]
	if !ok {
		capacity := n.pol.Channels
		if capacity <= 0 {
			capacity = unlimited
		}
		st = &linkState{link: l, res: sim.NewResource(n.eng, l.String(), capacity)}
		n.links[k] = st
	}
	return st
}

// xpath returns (deriving on first use) the cached routing work from
// src's cache row to dst: hop latency, rendezvous cost and — with
// congestion on — the route's fabric-interior link states already
// sorted into the global acquisition order. Every source node of one
// cache key shares the entry, which the topology's CacheKey contract
// makes exact (the node-port cable, the only per-node link, is
// excluded from admission — see Pending.admit). The cache survives
// Reset: link identities and hop counts are properties of the wiring,
// not of any one run. src and dst must be distinct nodes.
func (n *Net) xpath(src, dst fabric.NodeID) *xbarPath {
	key := n.fab.CacheKey(src)
	row := n.xpaths[key]
	if row == nil {
		row = make([]xbarPath, n.fab.Nodes())
		n.xpaths[key] = row
	}
	xp := &row[dst.GlobalID()]
	if !xp.derived {
		pr := n.prof
		route := n.fab.RouteInto(n.rbuf[:0], src, dst)
		// len(Route) == Hops+1 for distinct nodes, pinned by the fabric
		// route tests.
		xp.hops = len(route) - 1
		xp.fabLat = units.Time(xp.hops) * pr.HopLatency
		xp.rdvExtra = 2 * (2*pr.PerSideOverhead + xp.fabLat)
		if n.pol.Enabled {
			// Fat-tree interiors fit inline; longer routes (torus) let
			// append spill to the heap, once per entry.
			xp.states = xp.inline[:0]
			for _, l := range route {
				if l.Kind == fabric.LinkNodePort {
					continue
				}
				xp.states = append(xp.states, n.state(l))
			}
			// Insertion sort by key: short, and routes arrive near-sorted.
			st := xp.states
			for i := 1; i < len(st); i++ {
				for j := i; j > 0 && st[j].link.Key() < st[j-1].link.Key(); j-- {
					st[j], st[j-1] = st[j-1], st[j]
				}
			}
		}
		xp.derived = true
	}
	return xp
}

// Transfer blocks the calling proc for the sender-visible cost of moving
// size bytes from src to dst — MPI software overhead, the rendezvous
// round trip above the eager threshold, link admission along the route,
// and the payload stream through both endpoints' HCAs — then schedules
// deliver after the fabric traversal and the receive-side overhead.
// Intra-node transfers take the shared-memory path: software overhead on
// each side, nothing on the fabric.
func (n *Net) Transfer(p *sim.Proc, src, dst Endpoint, size units.Size, deliver func()) {
	if src.Node == dst.Node {
		n.msgs++
		pr := n.prof
		p.Sleep(pr.PerSideOverhead)
		n.eng.Schedule(pr.PerSideOverhead, deliver)
		return
	}
	n.transferVia(p, n.xpath(src.Node, dst.Node), n.HCA(src.Node), n.HCA(dst.Node),
		src, dst, size, deliver)
}

// PairPath resolves the routing work for a directed inter-node pair, for
// callers that key transfers by an index of their own (the replay
// evaluator holds one per rank pair) and skip every per-message lookup.
// The underlying route entry is shared crossbar-granular cache state;
// the returned handle itself is built per call, so callers should hold
// it rather than re-resolve per message. src and dst must be distinct
// nodes.
func (n *Net) PairPath(src, dst fabric.NodeID) *PairPath {
	if src == dst {
		panic("transport: PairPath of an intra-node pair")
	}
	return &PairPath{xp: n.xpath(src, dst), src: n.HCA(src), dst: n.HCA(dst)}
}

// Hops returns the route's crossbar traversal count (fabric.Route hops).
func (pp *PairPath) Hops() int { return pp.xp.hops }

// FabricLatency returns the route's pure hop-latency term (hops x the
// profile's per-hop latency).
func (pp *PairPath) FabricLatency() units.Time { return pp.xp.fabLat }

// RendezvousExtra returns the rendezvous round-trip cost a message above
// the eager threshold pays before admission: two software-overhead-plus-
// fabric traversals each way.
func (pp *PairPath) RendezvousExtra() units.Time { return pp.xp.rdvExtra }

// AdmissionLinks appends the route's admission-controlled links — the
// fabric-interior cables, node ports excluded — to buf in the exact
// global acquisition order Pending.admit takes them (ascending Link.Key),
// and returns the extended slice. On a congestion-off net the admission
// set is empty: no link state exists to acquire. Analytic models that
// fold offered load over the route (internal/surrogate) depend on this
// order and membership; the per-topology PairPath tests pin both.
func (pp *PairPath) AdmissionLinks(buf []fabric.Link) []fabric.Link {
	for _, st := range pp.xp.states {
		buf = append(buf, st.link)
	}
	return buf
}

// TransferVia is Transfer for an inter-node pair whose PairPath the
// caller already holds; pp must be PairPath(src.Node, dst.Node).
//
// Payload-carrying transfers run as an event chain: the proc parks once
// and the software-overhead interval, the rendezvous round trip, link
// admission and every HCA chunk but the last are driven by scheduled
// events, with the final chunk's completion waking the proc to run the
// release-and-deliver tail. The chain performs exactly the Schedule
// calls the blocking form performed, at exactly the same instants (a
// queued admission re-checks on the same wake events a parked proc
// would), so the calendar — and therefore every simulated result — is
// bit-identical to the multi-sleep shape while costing one proc
// park/resume instead of one per interval.
func (n *Net) TransferVia(p *sim.Proc, pp *PairPath, src, dst Endpoint, size units.Size, deliver func()) {
	n.transferVia(p, pp.xp, pp.src, pp.dst, src, dst, size, deliver)
}

// transferVia is TransferVia on the resolved route entry and endpoint
// adapters — the shape the internal hot path uses so Transfer never
// materializes a PairPath handle.
func (n *Net) transferVia(p *sim.Proc, xp *xbarPath, hsrc, hdst *ib.HCA, src, dst Endpoint, size units.Size, deliver func()) {
	if size <= 0 {
		n.msgs++
		n.wire += size
		pr := n.prof
		p.Sleep(pr.PerSideOverhead)
		n.eng.Schedule(xp.fabLat+pr.PerSideOverhead, deliver)
		return
	}
	x := n.startTransfer(p, xp, hsrc, hdst, src, dst, size, deliver)
	p.Park("transfer")
	// The final chunk's completion woke us.
	n.FinishTransfer(x)
}

// StartTransfer begins a payload-carrying chained transfer on behalf of
// proc p and returns its in-flight handle. It is safe to call from
// event context — replay walkers chain a compute interval directly
// into the send it precedes, parking their proc once for both. The
// caller must park p (with no wake pending); the chain wakes it when
// the stream completes, after which the caller runs FinishTransfer.
// size must be positive.
func (n *Net) StartTransfer(p *sim.Proc, pp *PairPath, src, dst Endpoint, size units.Size, deliver func()) *Pending {
	return n.startTransfer(p, pp.xp, pp.src, pp.dst, src, dst, size, deliver)
}

func (n *Net) startTransfer(p *sim.Proc, xp *xbarPath, hsrc, hdst *ib.HCA, src, dst Endpoint, size units.Size, deliver func()) *Pending {
	n.msgs++
	pr := n.prof
	n.wire += size
	x := n.getXfer()
	x.p = p
	x.xp = xp
	x.hsrc = hsrc
	x.hdst = hdst
	x.deliver = deliver
	x.pairBW = pr.PairBandwidth(src.Core, dst.Core)
	x.size = size
	x.remaining = size
	x.linkIdx = 0
	x.stage = xfAdmit
	// Above the eager threshold the rendezvous round trip precedes
	// admission; folding it into the initial delay schedules admission at
	// the same instant with one calendar event fewer per large message.
	delay := pr.PerSideOverhead
	if size > pr.EagerThreshold {
		delay += xp.rdvExtra
	}
	n.eng.Schedule(delay, x.stepFn)
	return x
}

// FinishTransfer runs a completed transfer's tail — deregister the HCA
// flow, release the route's links, schedule the delivery — exactly as
// the blocking form runs it after its last sleep. Call it from the
// woken proc, then the handle is recycled.
func (n *Net) FinishTransfer(x *Pending) {
	ib.EndBetween(x.hsrc, x.hdst)
	release(x.xp.states)
	n.eng.Schedule(x.xp.fabLat+n.prof.PerSideOverhead, x.deliver)
	n.putXfer(x)
}

// xfer stages.
const (
	xfAdmit  = iota // overhead (and any rendezvous trip) slept; admit onto the route's links
	xfStream        // admitted; one event per HCA chunk interval
)

// Pending is one in-flight chained transfer. The step and admission
// continuations are bound once per object, and objects recycle through
// the net's free list, so a steady-state transfer allocates nothing.
type Pending struct {
	n          *Net
	p          *sim.Proc
	xp         *xbarPath
	hsrc, hdst *ib.HCA
	deliver    func()
	pairBW     units.Bandwidth
	size       units.Size

	stage     uint8
	linkIdx   int
	remaining units.Size

	stepFn func()   // bound step; scheduled for every chain interval
	contFn func()   // bound admission continuation after a queued grant
	free   *Pending // next in the net's free list
}

// step advances the chain by one scheduled interval.
func (x *Pending) step() {
	if x.stage == xfAdmit {
		x.admit()
	} else {
		x.stream()
	}
}

// admit takes the route's links in the global acquisition order —
// every flow uses the same total order, so the hold-and-wait graph is
// acyclic and admission can never deadlock. Free links are taken
// inline; a contended link queues the continuation (contFn finishes the
// granted link's accounting and re-enters here for the rest of the
// route), on the same FIFO and wake events a blocked proc would use.
//
// Node-port cables are routed but not admission-controlled (path drops
// them): that wire is the adapter's own port, whose sharing the ib HCA
// flow model already charges (multi-flow serialization, duplex caps).
// Gating it here too would bill the same copper twice; the transport
// owns the crossbar-to-crossbar tiers the HCA cannot see.
func (x *Pending) admit() {
	states := x.xp.states
	for x.linkIdx < len(states) {
		st := states[x.linkIdx]
		if !st.res.AcquireFn(1, x.contFn) {
			return // queued; contFn continues from this link
		}
		st.msgs++
		st.bytes += x.size
		x.linkIdx++
	}
	x.stage = xfStream
	ib.BeginBetween(x.hsrc, x.hdst, x.size)
	x.stream()
}

// stream schedules the next HCA chunk interval at the rate both
// adapters sustain this instant; the last interval hands control back
// to the parked proc for the release-and-deliver tail.
func (x *Pending) stream() {
	chunk, t := ib.StepBetween(x.hsrc, x.hdst, x.remaining, x.pairBW)
	x.remaining -= chunk
	if x.remaining > 0 {
		x.n.eng.Schedule(t, x.stepFn)
	} else {
		x.p.WakeAfter(t)
	}
}

// getXfer pops a pooled transfer state machine (allocating on first
// use).
func (n *Net) getXfer() *Pending {
	x := n.xfers
	if x == nil {
		x = &Pending{n: n}
		x.stepFn = x.step
		x.contFn = func() {
			st := x.xp.states[x.linkIdx]
			st.msgs++
			st.bytes += x.size
			x.linkIdx++
			x.admit()
		}
		return x
	}
	n.xfers = x.free
	x.free = nil
	return x
}

// putXfer returns a finished transfer to the pool.
func (n *Net) putXfer(x *Pending) {
	x.p = nil
	x.xp = nil
	x.hsrc = nil
	x.hdst = nil
	x.deliver = nil
	x.free = n.xfers
	n.xfers = x
}

// release returns every held channel.
func release(states []*linkState) {
	for _, st := range states {
		st.res.Release(1)
	}
}

// LinkUsage reports one link channel's traffic and occupancy.
type LinkUsage struct {
	Link     fabric.Link
	Messages int64      // flows admitted onto the channel
	Bytes    units.Size // payload bytes carried
	PeakHeld int        // peak concurrent flows on the channel
	Queued   int64      // flows that had to wait for admission
	Wait     units.Time // total queueing delay behind the channel
	Busy     units.Time // time the channel had at least one flow
	// MeanQueue is the time-averaged admission queue length and
	// Utilization the busy fraction, both over the census horizon.
	MeanQueue   float64
	Utilization float64
}

// String renders the usage the way the CLI contention reports print it.
func (u LinkUsage) String() string {
	return fmt.Sprintf("%-28s %9d msgs %10s  wait %-10s util %5.1f%%  queue %.2f",
		u.Link, u.Messages, u.Bytes, u.Wait, 100*u.Utilization, u.MeanQueue)
}

// Census summarises link occupancy over one run.
type Census struct {
	// Horizon is the simulated instant the census was taken (the run's
	// makespan); utilizations are relative to it.
	Horizon units.Time
	// Links is the number of distinct directed link channels that
	// carried at least one flow.
	Links int
	// Queued counts flow admissions that had to wait, TotalWait their
	// cumulative queueing delay.
	Queued    int64
	TotalWait units.Time
	// PeakHeld is the highest concurrent flow count on any channel.
	PeakHeld int
	// Top holds the most contended channels, hottest first (by total
	// wait, then bytes carried, then link order).
	Top []LinkUsage
	// The uplink tier — the 2:1-tapered cables between the CUs and the
	// inter-CU switches — reported separately, so taper pressure is
	// distinguishable from middle-stage switch contention: queued flows
	// and wait on uplink cables only, and the hottest uplinks.
	UplinkQueued int64
	UplinkWait   units.Time
	TopUplinks   []LinkUsage
}

// Hotter is the census ranking: total wait first, bytes carried second,
// and — so that the top-N output is fully deterministic under ties —
// the link's total order (Key) as the final criterion. The census
// gathers links from a map, whose iteration order varies run to run;
// because Hotter is a strict total order (no two distinct links share a
// Key), the sorted output is identical regardless of input order, which
// the equal-occupancy regression test pins.
func Hotter(a, b LinkUsage) bool {
	if a.Wait != b.Wait {
		return a.Wait > b.Wait
	}
	if a.Bytes != b.Bytes {
		return a.Bytes > b.Bytes
	}
	return a.Link.Key() < b.Link.Key()
}

// Census builds the link census, with the top contended links ranked
// hottest first. A nil receiver or a congestion-off net returns nil.
// top bounds the ranked Top/TopUplinks lists; top <= 0 returns the
// summary counters with both lists empty. Links that carried no flow
// this run (possible on a pooled Net, where Reset keeps earlier runs'
// link states alive with zeroed counters) do not appear in the census.
func (n *Net) Census(top int) *Census {
	if n == nil || n.links == nil {
		return nil
	}
	if top < 0 {
		top = 0
	}
	c := &Census{Horizon: n.eng.Now()}
	all := make([]LinkUsage, 0, len(n.links))
	var uplinks []LinkUsage
	for _, st := range n.links {
		if st.msgs == 0 {
			continue
		}
		s := st.res.Stats()
		u := LinkUsage{
			Link:        st.link,
			Messages:    st.msgs,
			Bytes:       st.bytes,
			PeakHeld:    s.PeakInUse,
			Queued:      s.Contended,
			Wait:        s.WaitTime,
			Busy:        s.BusyTime,
			MeanQueue:   s.MeanQueue(c.Horizon),
			Utilization: s.Utilization(c.Horizon),
		}
		c.Links++
		c.Queued += u.Queued
		c.TotalWait += u.Wait
		if u.PeakHeld > c.PeakHeld {
			c.PeakHeld = u.PeakHeld
		}
		if u.Link.Kind == fabric.LinkUplink {
			c.UplinkQueued += u.Queued
			c.UplinkWait += u.Wait
			uplinks = append(uplinks, u)
		}
		all = append(all, u)
	}
	sort.Slice(all, func(i, j int) bool { return Hotter(all[i], all[j]) })
	sort.Slice(uplinks, func(i, j int) bool { return Hotter(uplinks[i], uplinks[j]) })
	if top < len(all) {
		all = all[:top]
	}
	if top < len(uplinks) {
		uplinks = uplinks[:top]
	}
	c.Top = all[:len(all):len(all)]
	c.TopUplinks = uplinks[:len(uplinks):len(uplinks)]
	return c
}
