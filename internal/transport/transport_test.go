package transport

import (
	"testing"

	"roadrunner/internal/fabric"
	"roadrunner/internal/ib"
	"roadrunner/internal/sim"
	"roadrunner/internal/units"
)

func ep(cu, node int) Endpoint {
	return Endpoint{Node: fabric.NodeID{CU: cu, Node: node}, Core: 1}
}

// runTransfers executes the given transfers concurrently (one proc each)
// and returns each sender's completion time and each delivery time.
func runTransfers(t *testing.T, pol Policy, size units.Size, pairs [][2]Endpoint) (send, recv []units.Time, net *Net) {
	t.Helper()
	eng := sim.NewEngine()
	defer eng.Close()
	net = New(eng, fabric.NewScaled(2), ib.OpenMPI(), pol)
	send = make([]units.Time, len(pairs))
	recv = make([]units.Time, len(pairs))
	for i, pr := range pairs {
		i, pr := i, pr
		eng.Spawn("sender", func(p *sim.Proc) {
			net.Transfer(p, pr[0], pr[1], size, func() { recv[i] = eng.Now() })
			send[i] = p.Now()
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return send, recv, net
}

// TestInfiniteCapacityMatchesOffPath is the transport-level half of the
// invariant: with link capacity unlimited the routed path sleeps through
// exactly the same event sequence as the unrouted PR 2 path, so
// completion and delivery instants match tick for tick.
func TestInfiniteCapacityMatchesOffPath(t *testing.T) {
	pairs := [][2]Endpoint{
		{ep(0, 0), ep(0, 1)},    // same crossbar
		{ep(0, 2), ep(0, 170)},  // same CU
		{ep(0, 3), ep(1, 3)},    // cross CU, same crossbar index
		{ep(0, 9), ep(1, 100)},  // cross CU, different crossbar
		{ep(1, 50), ep(1, 50)},  // intra-node shared memory
		{ep(0, 40), ep(1, 177)}, // contends with nothing
	}
	for _, size := range []units.Size{0, 8, 4 * units.KB, 256 * units.KB} {
		offS, offR, offNet := runTransfers(t, Policy{}, size, pairs)
		infS, infR, infNet := runTransfers(t, InfiniteCapacity(), size, pairs)
		for i := range pairs {
			if offS[i] != infS[i] || offR[i] != infR[i] {
				t.Errorf("size %v pair %d: off %v/%v != infinite %v/%v",
					size, i, offS[i], offR[i], infS[i], infR[i])
			}
		}
		if offNet.Census(1) != nil {
			t.Error("congestion-off net produced a census")
		}
		if c := infNet.Census(3); size > 0 {
			if c == nil || c.Queued != 0 || c.TotalWait != 0 {
				t.Errorf("size %v: infinite-capacity fabric queued: %+v", size, c)
			}
		}
	}
}

// TestUplinkSerialization pins the congestion mechanism: two flows from
// the same line crossbar whose destination hashes pick the same uplink
// cable serialize under the wormhole policy and overlap on the
// infinite-capacity fabric.
func TestUplinkSerialization(t *testing.T) {
	// Sources on CU0 crossbar 0; destinations 180 and 184 are both
	// 0 mod 4, so both flows want cable (sw0, CU0, slot0).
	pairs := [][2]Endpoint{
		{ep(0, 0), ep(1, 0)},
		{ep(0, 1), ep(1, 4)},
	}
	const size = 256 * units.KB
	infS, _, _ := runTransfers(t, InfiniteCapacity(), size, pairs)
	conS, _, net := runTransfers(t, Congested(), size, pairs)
	if conS[0] != infS[0] {
		t.Errorf("first-admitted flow slowed: %v vs %v", conS[0], infS[0])
	}
	if float64(conS[1]) < 1.5*float64(infS[1]) {
		t.Errorf("second flow not serialized: congested %v vs infinite %v", conS[1], infS[1])
	}
	c := net.Census(5)
	if c == nil || c.Queued != 1 || c.TotalWait <= 0 {
		t.Fatalf("census = %+v, want one queued flow with positive wait", c)
	}
	// Endpoint accounting composes with link occupancy: the adapters
	// still saw every flow and byte even though admission serialized.
	es := net.HCA(pairs[0][0].Node).Stats()
	if es.Flows[0] != 1 || es.Bytes[0] != size || es.Peak[0] != 1 {
		t.Errorf("src endpoint stats %+v", es)
	}
	// The flows share both the egress and the ingress cable of the
	// tapered tier; the queueing lands on whichever sorts first in the
	// acquisition order, but the hottest link must be an uplink cable.
	hot := c.Top[0]
	if hot.Link.Kind != fabric.LinkUplink {
		t.Errorf("hottest link %v, want an uplink cable", hot.Link)
	}
	if hot.Messages != 2 || hot.Queued != 1 || hot.Wait != c.TotalWait {
		t.Errorf("hot link usage %+v", hot)
	}
	if hot.Utilization <= 0 || hot.MeanQueue <= 0 {
		t.Errorf("hot link occupancy not accounted: %+v", hot)
	}
}

// TestDisjointRoutesDoNotQueue checks that flows on disjoint cables never
// wait even under the wormhole policy.
func TestDisjointRoutesDoNotQueue(t *testing.T) {
	// Different source crossbars and destination hashes: disjoint routes.
	pairs := [][2]Endpoint{
		{ep(0, 0), ep(1, 1)},
		{ep(0, 20), ep(1, 90)},
		{ep(0, 60), ep(1, 175)},
	}
	infS, _, _ := runTransfers(t, InfiniteCapacity(), 256*units.KB, pairs)
	conS, _, net := runTransfers(t, Congested(), 256*units.KB, pairs)
	for i := range pairs {
		if conS[i] != infS[i] {
			t.Errorf("pair %d: disjoint flow delayed: %v vs %v", i, conS[i], infS[i])
		}
	}
	if c := net.Census(1); c.Queued != 0 || c.TotalWait != 0 {
		t.Errorf("census shows queueing on disjoint routes: %+v", c)
	}
}

// TestCountersAndCensusDeterminism checks message/wire accounting and
// that repeated congested runs produce identical censuses.
func TestCountersAndCensusDeterminism(t *testing.T) {
	pairs := [][2]Endpoint{
		{ep(0, 0), ep(1, 0)},
		{ep(0, 1), ep(1, 4)},
		{ep(0, 7), ep(0, 7)}, // intra-node: counted, not on the wire
	}
	_, _, a := runTransfers(t, Congested(), 64*units.KB, pairs)
	_, _, b := runTransfers(t, Congested(), 64*units.KB, pairs)
	if a.Messages() != 3 || a.WireBytes() != 2*64*units.KB {
		t.Errorf("messages/wire = %d/%v", a.Messages(), a.WireBytes())
	}
	ca, cb := a.Census(10), b.Census(10)
	if ca.Links != cb.Links || ca.Queued != cb.Queued || ca.TotalWait != cb.TotalWait {
		t.Fatalf("census diverged: %+v vs %+v", ca, cb)
	}
	for i := range ca.Top {
		if ca.Top[i] != cb.Top[i] {
			t.Errorf("top link %d diverged: %v vs %v", i, ca.Top[i], cb.Top[i])
		}
	}
}

// TestCensusTieOrderingDeterministic crafts a census where every link is
// equally occupied — identical wait (zero) and identical bytes — so the
// primary and secondary ranking criteria all tie. The census gathers
// links from a map whose iteration order varies between runs; only the
// link-identity tiebreak in Hotter keeps the top-N output stable, and
// this test pins it: ties must come out in Key order, every run.
func TestCensusTieOrderingDeterministic(t *testing.T) {
	eng := sim.NewEngine()
	defer eng.Close()
	net := New(eng, fabric.NewScaled(2), ib.OpenMPI(), Congested())
	// One proc runs the transfers back to back, so no two flows ever
	// overlap: every link ends with Wait 0. Equal sizes give equal
	// Bytes. Distinct source crossbars give distinct links.
	pairs := [][2]Endpoint{
		{ep(0, 0), ep(1, 0)},
		{ep(0, 9), ep(1, 9)},
		{ep(0, 17), ep(1, 17)},
		{ep(0, 25), ep(1, 25)},
		{ep(1, 33), ep(0, 33)},
		{ep(1, 41), ep(0, 41)},
	}
	eng.Spawn("serial-sender", func(p *sim.Proc) {
		for _, pr := range pairs {
			net.Transfer(p, pr[0], pr[1], 4*units.KB, func() {})
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	c := net.Census(1 << 30)
	if c.Queued != 0 || c.TotalWait != 0 {
		t.Fatalf("crafted flows queued: %+v", c)
	}
	if len(c.Top) < 2*len(pairs) {
		t.Fatalf("only %d links in the census", len(c.Top))
	}
	for i, u := range c.Top {
		if u.Wait != 0 || u.Bytes != 4*units.KB {
			t.Fatalf("link %v not an exact tie: wait %v, bytes %v", u.Link, u.Wait, u.Bytes)
		}
		if i > 0 && c.Top[i-1].Link.Key() >= u.Link.Key() {
			t.Errorf("tied links out of Key order at %d: %v before %v", i, c.Top[i-1].Link, u.Link)
		}
	}
	for i, u := range c.TopUplinks {
		if i > 0 && c.TopUplinks[i-1].Link.Key() >= u.Link.Key() {
			t.Errorf("tied uplinks out of Key order at %d: %v before %v", i, c.TopUplinks[i-1].Link, u.Link)
		}
	}
}

// TestCensusTopBound: top <= 0 returns the summary counters with empty
// ranked lists instead of relying on slice-bound luck (top = -1 used to
// slice all[:-1] and panic), and top larger than the link count returns
// everything.
func TestCensusTopBound(t *testing.T) {
	pairs := [][2]Endpoint{
		{ep(0, 0), ep(1, 0)},
		{ep(0, 1), ep(1, 4)},
	}
	_, _, net := runTransfers(t, Congested(), 64*units.KB, pairs)
	full := net.Census(1 << 30)
	if full.Links == 0 {
		t.Fatal("no links in census")
	}
	for _, top := range []int{0, -1, -1 << 30} {
		c := net.Census(top)
		if c == nil {
			t.Fatalf("Census(%d) = nil", top)
		}
		if len(c.Top) != 0 || len(c.TopUplinks) != 0 {
			t.Errorf("Census(%d): %d top links, %d top uplinks, want none",
				top, len(c.Top), len(c.TopUplinks))
		}
		if c.Links != full.Links || c.Queued != full.Queued || c.TotalWait != full.TotalWait ||
			c.UplinkQueued != full.UplinkQueued || c.UplinkWait != full.UplinkWait {
			t.Errorf("Census(%d) summary diverged from full census: %+v vs %+v", top, c, full)
		}
	}
}

// TestNetResetReproducesFreshRun pins the pooling contract: after Reset
// (alongside an engine reset) the same workload on the same Net produces
// timings, counters and a census identical to a fresh engine+Net pair —
// including links touched only by a previous, different workload, which
// must not leak into the census.
func TestNetResetReproducesFreshRun(t *testing.T) {
	warm := [][2]Endpoint{ // first workload: touches its own links
		{ep(0, 30), ep(1, 80)},
		{ep(1, 12), ep(0, 99)},
	}
	pairs := [][2]Endpoint{
		{ep(0, 0), ep(1, 0)},
		{ep(0, 1), ep(1, 4)},
		{ep(0, 7), ep(0, 7)},
	}
	const size = 256 * units.KB
	run := func(eng *sim.Engine, net *Net, ps [][2]Endpoint) (send, recv []units.Time) {
		send = make([]units.Time, len(ps))
		recv = make([]units.Time, len(ps))
		for i, pr := range ps {
			i, pr := i, pr
			eng.Spawn("sender", func(p *sim.Proc) {
				net.Transfer(p, pr[0], pr[1], size, func() { recv[i] = eng.Now() })
				send[i] = p.Now()
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return send, recv
	}

	fresh := sim.NewEngine()
	defer fresh.Close()
	freshNet := New(fresh, fabric.NewScaled(2), ib.OpenMPI(), Congested())
	wantS, wantR := run(fresh, freshNet, pairs)
	want := freshNet.Census(1 << 30)

	pooled := sim.NewEngine()
	defer pooled.Close()
	pooledNet := New(pooled, fabric.NewScaled(2), ib.OpenMPI(), Congested())
	run(pooled, pooledNet, warm)
	pooled.Reset()
	pooledNet.Reset()
	gotS, gotR := run(pooled, pooledNet, pairs)
	got := pooledNet.Census(1 << 30)

	for i := range pairs {
		if gotS[i] != wantS[i] || gotR[i] != wantR[i] {
			t.Errorf("pair %d: pooled %v/%v != fresh %v/%v", i, gotS[i], gotR[i], wantS[i], wantR[i])
		}
	}
	if pooledNet.Messages() != freshNet.Messages() || pooledNet.WireBytes() != freshNet.WireBytes() {
		t.Errorf("counters: pooled %d/%v != fresh %d/%v",
			pooledNet.Messages(), pooledNet.WireBytes(), freshNet.Messages(), freshNet.WireBytes())
	}
	if got.Links != want.Links || got.Queued != want.Queued || got.TotalWait != want.TotalWait ||
		len(got.Top) != len(want.Top) {
		t.Fatalf("census diverged after reset:\n  pooled %+v\n  fresh  %+v", got, want)
	}
	for i := range want.Top {
		if got.Top[i] != want.Top[i] {
			t.Errorf("top link %d: pooled %v != fresh %v", i, got.Top[i], want.Top[i])
		}
	}
}

// TestHotterTotalOrder checks the ranking criteria directly: wait beats
// bytes, bytes beat identity, and identity breaks exact ties both ways.
func TestHotterTotalOrder(t *testing.T) {
	la := fabric.Link{Kind: fabric.LinkSpine, Up: true, CU: 0, Sw: -1, A: 0, B: 1}
	lb := fabric.Link{Kind: fabric.LinkSpine, Up: true, CU: 0, Sw: -1, A: 0, B: 2}
	u := func(l fabric.Link, wait units.Time, bytes units.Size) LinkUsage {
		return LinkUsage{Link: l, Wait: wait, Bytes: bytes}
	}
	if !Hotter(u(la, 5, 0), u(lb, 3, 100)) {
		t.Error("higher wait must rank first")
	}
	if !Hotter(u(lb, 5, 100), u(la, 5, 50)) {
		t.Error("equal wait: more bytes must rank first")
	}
	if !Hotter(u(la, 5, 100), u(lb, 5, 100)) || Hotter(u(lb, 5, 100), u(la, 5, 100)) {
		t.Error("exact tie must break by link Key, lower first")
	}
	if Hotter(u(la, 5, 100), u(la, 5, 100)) {
		t.Error("Hotter must be irreflexive")
	}
}
