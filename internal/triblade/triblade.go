// Package triblade assembles the Roadrunner compute node of Fig. 1: one
// IBM LS21 blade (two dual-core Opterons) plus two IBM QS22 blades (two
// PowerXCell 8i each), joined by an expansion card carrying two Broadcom
// HT2100 I/O bridges and the Mellanox 4x DDR InfiniBand HCA.
//
// Each Opteron core is paired with exactly one PowerXCell 8i across a
// dedicated PCIe x8 path; cores 1 and 3 sit on the bridge adjacent to
// the HCA (the Fig. 8 asymmetry). The package also produces the node
// inventory behind Fig. 3 and the node column of Table II.
package triblade

import (
	"fmt"

	"roadrunner/internal/cell"
	"roadrunner/internal/hostcpu"
	"roadrunner/internal/params"
	"roadrunner/internal/units"
)

// NumCells is the number of PowerXCell 8i processors per triblade.
const NumCells = 4

// NumOpteronCores is the number of Opteron cores per triblade.
const NumOpteronCores = 4

// Link is one internal wire of the triblade.
type Link struct {
	Name      string
	From, To  string
	Bandwidth units.Bandwidth // per direction
}

// Node is one triblade.
type Node struct {
	Opteron *hostcpu.CPU // one of the two identical chips
	Cell    *cell.Chip   // one of the four identical chips
}

// New assembles a Roadrunner triblade.
func New() *Node {
	return &Node{
		Opteron: hostcpu.Opteron2210HE(),
		Cell:    cell.New(cell.PowerXCell8i),
	}
}

// PairedCell returns the Cell index (0..3) accelerating an Opteron core.
// The pairing is identity: core i drives Cell i over its own PCIe path.
func (n *Node) PairedCell(core int) int {
	if core < 0 || core >= NumOpteronCores {
		panic(fmt.Sprintf("triblade: core %d", core))
	}
	return core
}

// HCANearCore reports whether a core is adjacent to the InfiniBand HCA
// (cores 1 and 3, per §IV.C).
func (n *Node) HCANearCore(core int) bool { return core%2 == 1 }

// PeakDP returns the node's double-precision peak: Table II's
// 14.4 + 435.2 GF/s.
func (n *Node) PeakDP() units.Flops {
	return n.OpteronPeakDP() + n.CellPeakDP()
}

// OpteronPeakDP returns the LS21 blade's DP peak (14.4 GF/s).
func (n *Node) OpteronPeakDP() units.Flops {
	return n.Opteron.PeakDP() * 2 // two chips per LS21
}

// CellPeakDP returns the two QS22 blades' DP peak (435.2 GF/s).
func (n *Node) CellPeakDP() units.Flops {
	return n.Cell.PeakDP() * NumCells
}

// PeakSP returns the node's single-precision peak (28.8 + 921.6 GF/s).
func (n *Node) PeakSP() units.Flops {
	return n.Opteron.PeakSP()*2 + n.Cell.PeakSP()*NumCells
}

// SPEPeakDP returns just the 32 SPEs' contribution (409.6 GF/s, the
// dominant slice of Fig. 3a).
func (n *Node) SPEPeakDP() units.Flops {
	return n.Cell.SPEPeakDP() * 8 * NumCells
}

// PPEPeakDP returns the 4 PPEs' contribution (25.6 GF/s).
func (n *Node) PPEPeakDP() units.Flops {
	return n.Cell.PPEPeakDP() * NumCells
}

// OpteronMemory returns the LS21 memory (16 GB: 4 GB per core).
func (n *Node) OpteronMemory() units.Size {
	return params.MemPerOpteronCore * NumOpteronCores
}

// CellMemory returns the QS22 memory (16 GB: 4 GB per Cell).
func (n *Node) CellMemory() units.Size {
	return params.MemPerCell * NumCells
}

// OpteronOnChip returns the Opteron blade's on-chip cache total
// (Fig. 3b's 8.5 MB: 4 cores x (64+64 KB L1 + 2 MB L2) = 8.5 MB).
func (n *Node) OpteronOnChip() units.Size {
	perCore := params.OpteronL1D + params.OpteronL1I + params.OpteronL2
	return perCore * NumOpteronCores
}

// CellOnChip returns the Cell blades' on-chip memory (Fig. 3b's
// 10.25 MB: per chip 8 x 256 KB local store + 32+32 KB L1 + 512 KB L2).
func (n *Node) CellOnChip() units.Size {
	perChip := 8*params.LocalStoreSize + params.PPEL1D + params.PPEL1I + params.PPEL2
	return perChip * NumCells
}

// Links returns the internal wiring of Fig. 1.
func (n *Node) Links() []Link {
	links := []Link{
		{Name: "HT0", From: "Opteron0", To: "HT2100-A", Bandwidth: params.HTBandwidth},
		{Name: "HT1", From: "Opteron1", To: "HT2100-B", Bandwidth: params.HTBandwidth},
	}
	for c := 0; c < NumCells; c++ {
		bridge := "HT2100-A"
		if c >= 2 {
			bridge = "HT2100-B"
		}
		links = append(links, Link{
			Name:      fmt.Sprintf("PCIe-x8-%d", c),
			From:      bridge,
			To:        fmt.Sprintf("Cell%d", c),
			Bandwidth: params.PCIeBandwidthPeak,
		})
	}
	links = append(links, Link{
		Name: "IB-4xDDR", From: "HT2100-B", To: "HCA",
		Bandwidth: params.IBLinkBandwidth,
	})
	return links
}

// Power returns the node's electrical draw under load.
func (n *Node) Power() units.Power {
	return params.PowerPerCell*NumCells +
		params.PowerPerOpteronChip*2 +
		params.PowerPerNodeOther
}
