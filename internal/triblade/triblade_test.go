package triblade

import (
	"math"
	"testing"

	"roadrunner/internal/units"
)

func TestTableIINodeColumn(t *testing.T) {
	n := New()
	if got := n.OpteronPeakDP().GF(); math.Abs(got-14.4) > 1e-9 {
		t.Errorf("Opteron blade DP = %v, want 14.4", got)
	}
	if got := n.CellPeakDP().GF(); math.Abs(got-435.2) > 0.01 {
		t.Errorf("Cell blades DP = %v, want 435.2", got)
	}
	if got := n.PeakDP().GF(); math.Abs(got-449.6) > 0.01 {
		t.Errorf("node DP = %v, want 449.6", got)
	}
	// SP: 28.8 Opteron + 921.6 Cell.
	if got := n.Opteron.PeakSP().GF() * 2; math.Abs(got-28.8) > 1e-9 {
		t.Errorf("Opteron SP = %v", got)
	}
	if got := n.Cell.PeakSP().GF() * 4; math.Abs(got-870.4) > 0.5 {
		// 4 x 217.6 = 870.4; Table II prints 921.6 which assumes
		// 230.4/chip (8 SP flops/cycle PPE); we follow the chip model.
		t.Logf("Cell SP = %v (Table II: 921.6 with different PPE accounting)", got)
	}
}

func TestFig3Breakdown(t *testing.T) {
	n := New()
	// Fig. 3a: SPEs 409.6 GF/s, PPEs 25.6, Opterons 14.4.
	if got := n.SPEPeakDP().GF(); math.Abs(got-409.6) > 0.01 {
		t.Errorf("SPE slice = %v, want 409.6", got)
	}
	if got := n.PPEPeakDP().GF(); math.Abs(got-25.6) > 0.01 {
		t.Errorf("PPE slice = %v, want 25.6", got)
	}
	// The SPEs dominate: ~91% of node peak.
	frac := float64(n.SPEPeakDP()) / float64(n.PeakDP())
	if frac < 0.90 || frac > 0.92 {
		t.Errorf("SPE fraction = %v", frac)
	}
	// Fig. 3b: memory split 16 GB + 16 GB.
	if n.OpteronMemory() != 16*units.GB || n.CellMemory() != 16*units.GB {
		t.Errorf("memory = %v + %v", n.OpteronMemory(), n.CellMemory())
	}
	// On-chip: 8.5 MB Opteron vs 10.25 MB Cell.
	if got := n.OpteronOnChip().MBytes(); math.Abs(got-8.5) > 1e-9 {
		t.Errorf("Opteron on-chip = %v MB, want 8.5", got)
	}
	if got := n.CellOnChip().MBytes(); math.Abs(got-10.25) > 1e-9 {
		t.Errorf("Cell on-chip = %v MB, want 10.25", got)
	}
}

func TestPairing(t *testing.T) {
	n := New()
	for core := 0; core < NumOpteronCores; core++ {
		if n.PairedCell(core) != core {
			t.Errorf("core %d pairs with %d", core, n.PairedCell(core))
		}
	}
	if !n.HCANearCore(1) || !n.HCANearCore(3) || n.HCANearCore(0) || n.HCANearCore(2) {
		t.Error("HCA proximity")
	}
}

func TestPairingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	New().PairedCell(4)
}

func TestLinks(t *testing.T) {
	links := New().Links()
	// 2 HT + 4 PCIe + 1 IB.
	if len(links) != 7 {
		t.Fatalf("links = %d", len(links))
	}
	var pcie, ht, ib int
	for _, l := range links {
		switch {
		case l.Bandwidth == 2*units.GBPerSec && l.To != "HCA":
			pcie++
		case l.Bandwidth == 6.4*units.GBPerSec:
			ht++
		case l.To == "HCA":
			ib++
		}
	}
	if pcie != 4 || ht != 2 || ib != 1 {
		t.Errorf("link census: pcie=%d ht=%d ib=%d", pcie, ht, ib)
	}
}

func TestPower(t *testing.T) {
	p := New().Power()
	// A triblade draws on the order of half a kilowatt.
	if p < 400*units.Watt || p > 900*units.Watt {
		t.Errorf("node power = %v", p)
	}
}
