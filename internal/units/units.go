// Package units provides the physical quantities used throughout the
// Roadrunner models: simulated time, data sizes, bandwidths, clock
// frequencies and floating-point rates.
//
// Simulated time is an integer count of picoseconds. Picosecond resolution
// comfortably represents both a 3.2 GHz SPU cycle (312.5 ps, rounded to
// 312 ps or expressed exactly via FemtoCycles helpers) and multi-second
// application runs (int64 picoseconds span ±106 days), while keeping every
// arithmetic operation exact and deterministic.
package units

import (
	"fmt"
	"math"
)

// Time is a duration or instant of simulated time, in picoseconds.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanoseconds returns t expressed in nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds returns t expressed in microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Milliseconds returns t expressed in milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromSeconds converts a floating-point number of seconds to a Time,
// rounding to the nearest picosecond.
func FromSeconds(s float64) Time { return Time(math.Round(s * float64(Second))) }

// FromNanoseconds converts a floating-point number of nanoseconds to a Time.
func FromNanoseconds(ns float64) Time { return Time(math.Round(ns * float64(Nanosecond))) }

// FromMicroseconds converts a floating-point number of microseconds to a Time.
func FromMicroseconds(us float64) Time { return Time(math.Round(us * float64(Microsecond))) }

// String renders the time with an auto-selected unit.
func (t Time) String() string {
	abs := t
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= Second:
		return fmt.Sprintf("%.6gs", t.Seconds())
	case abs >= Millisecond:
		return fmt.Sprintf("%.6gms", t.Milliseconds())
	case abs >= Microsecond:
		return fmt.Sprintf("%.6gus", t.Microseconds())
	case abs >= Nanosecond:
		return fmt.Sprintf("%.6gns", t.Nanoseconds())
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// Size is a quantity of data in bytes.
type Size int64

// Common sizes. These are binary units (KiB etc.) but keep the customary
// HPC spelling (KB) used by the paper.
const (
	Byte Size = 1
	KB   Size = 1024 * Byte
	MB   Size = 1024 * KB
	GB   Size = 1024 * MB
)

// Bytes returns the size as a float64 byte count.
func (s Size) Bytes() float64 { return float64(s) }

// KBytes returns the size in KB (1024 bytes).
func (s Size) KBytes() float64 { return float64(s) / float64(KB) }

// MBytes returns the size in MB.
func (s Size) MBytes() float64 { return float64(s) / float64(MB) }

// GBytes returns the size in GB.
func (s Size) GBytes() float64 { return float64(s) / float64(GB) }

// String renders the size with an auto-selected unit.
func (s Size) String() string {
	abs := s
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= GB && s%GB == 0:
		return fmt.Sprintf("%dGB", int64(s/GB))
	case abs >= MB && s%MB == 0:
		return fmt.Sprintf("%dMB", int64(s/MB))
	case abs >= KB && s%KB == 0:
		return fmt.Sprintf("%dKB", int64(s/KB))
	case abs >= GB:
		return fmt.Sprintf("%.4gGB", s.GBytes())
	case abs >= MB:
		return fmt.Sprintf("%.4gMB", s.MBytes())
	case abs >= KB:
		return fmt.Sprintf("%.4gKB", s.KBytes())
	default:
		return fmt.Sprintf("%dB", int64(s))
	}
}

// Bandwidth is a data rate in bytes per second.
type Bandwidth float64

// Common bandwidth units, in the decimal (vendor datasheet) convention the
// paper uses: 1 GB/s = 1e9 bytes/s.
const (
	BytePerSec Bandwidth = 1
	KBPerSec   Bandwidth = 1e3
	MBPerSec   Bandwidth = 1e6
	GBPerSec   Bandwidth = 1e9
)

// MBps returns the bandwidth in MB/s (decimal).
func (b Bandwidth) MBps() float64 { return float64(b) / float64(MBPerSec) }

// GBps returns the bandwidth in GB/s (decimal).
func (b Bandwidth) GBps() float64 { return float64(b) / float64(GBPerSec) }

// String renders the bandwidth with an auto-selected unit.
func (b Bandwidth) String() string {
	switch {
	case b >= GBPerSec:
		return fmt.Sprintf("%.4gGB/s", b.GBps())
	case b >= MBPerSec:
		return fmt.Sprintf("%.4gMB/s", b.MBps())
	default:
		return fmt.Sprintf("%.4gB/s", float64(b))
	}
}

// TransferTime returns the time to move size bytes at bandwidth b,
// excluding any fixed latency. A non-positive bandwidth yields zero time
// so that pure-latency links can be expressed with Bandwidth(0).
func (b Bandwidth) TransferTime(size Size) Time {
	if b <= 0 || size <= 0 {
		return 0
	}
	return FromSeconds(float64(size) / float64(b))
}

// Frequency is a clock rate in Hz.
type Frequency float64

// Common frequency units.
const (
	Hz  Frequency = 1
	MHz Frequency = 1e6
	GHz Frequency = 1e9
)

// Cycle returns the duration of one clock period, rounded to the nearest
// picosecond.
func (f Frequency) Cycle() Time {
	if f <= 0 {
		return 0
	}
	return FromSeconds(1 / float64(f))
}

// Cycles returns the duration of n clock periods. The multiplication is
// carried out in float64 before rounding so that the error does not
// accumulate per cycle (3.2 GHz is a 312.5 ps period; 2 cycles must be
// 625 ps, not 624 ps).
func (f Frequency) Cycles(n int64) Time {
	if f <= 0 {
		return 0
	}
	return FromSeconds(float64(n) / float64(f))
}

// GHzF returns the frequency in GHz.
func (f Frequency) GHzF() float64 { return float64(f) / float64(GHz) }

// String renders the frequency.
func (f Frequency) String() string {
	switch {
	case f >= GHz:
		return fmt.Sprintf("%.4gGHz", float64(f)/float64(GHz))
	case f >= MHz:
		return fmt.Sprintf("%.4gMHz", float64(f)/float64(MHz))
	default:
		return fmt.Sprintf("%.4gHz", float64(f))
	}
}

// Flops is a floating-point rate in flop/s.
type Flops float64

// Common flop-rate units.
const (
	FlopPerSec Flops = 1
	MFlops     Flops = 1e6
	GFlops     Flops = 1e9
	TFlops     Flops = 1e12
	PFlops     Flops = 1e15
)

// MF returns the rate in Mflop/s.
func (f Flops) MF() float64 { return float64(f) / float64(MFlops) }

// GF returns the rate in Gflop/s.
func (f Flops) GF() float64 { return float64(f) / float64(GFlops) }

// TF returns the rate in Tflop/s.
func (f Flops) TF() float64 { return float64(f) / float64(TFlops) }

// PF returns the rate in Pflop/s.
func (f Flops) PF() float64 { return float64(f) / float64(PFlops) }

// String renders the rate with an auto-selected unit.
func (f Flops) String() string {
	switch {
	case f >= PFlops:
		return fmt.Sprintf("%.4gPF/s", f.PF())
	case f >= TFlops:
		return fmt.Sprintf("%.4gTF/s", f.TF())
	case f >= GFlops:
		return fmt.Sprintf("%.4gGF/s", f.GF())
	case f >= MFlops:
		return fmt.Sprintf("%.4gMF/s", f.MF())
	default:
		return fmt.Sprintf("%.4gF/s", float64(f))
	}
}

// Power is electrical power in watts.
type Power float64

// Common power units.
const (
	Watt     Power = 1
	Kilowatt Power = 1e3
	Megawatt Power = 1e6
)

// KW returns the power in kilowatts.
func (p Power) KW() float64 { return float64(p) / float64(Kilowatt) }

// MW returns the power in megawatts.
func (p Power) MW() float64 { return float64(p) / float64(Megawatt) }

// String renders the power.
func (p Power) String() string {
	switch {
	case p >= Megawatt:
		return fmt.Sprintf("%.4gMW", p.MW())
	case p >= Kilowatt:
		return fmt.Sprintf("%.4gkW", p.KW())
	default:
		return fmt.Sprintf("%.4gW", float64(p))
	}
}
