package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	cases := []struct {
		in   Time
		ns   float64
		us   float64
		ms   float64
		secs float64
	}{
		{Second, 1e9, 1e6, 1e3, 1},
		{Millisecond, 1e6, 1e3, 1, 1e-3},
		{Microsecond, 1e3, 1, 1e-3, 1e-6},
		{Nanosecond, 1, 1e-3, 1e-6, 1e-9},
		{220 * Nanosecond, 220, 0.22, 0.00022, 2.2e-7},
	}
	for _, c := range cases {
		if got := c.in.Nanoseconds(); got != c.ns {
			t.Errorf("%v.Nanoseconds() = %v, want %v", c.in, got, c.ns)
		}
		if got := c.in.Microseconds(); got != c.us {
			t.Errorf("%v.Microseconds() = %v, want %v", c.in, got, c.us)
		}
		if got := c.in.Milliseconds(); got != c.ms {
			t.Errorf("%v.Milliseconds() = %v, want %v", c.in, got, c.ms)
		}
		if got := c.in.Seconds(); got != c.secs {
			t.Errorf("%v.Seconds() = %v, want %v", c.in, got, c.secs)
		}
	}
}

func TestFromSecondsRoundTrip(t *testing.T) {
	f := func(ms uint32) bool {
		// Property: the seconds round trip is exact to within 1 ps even
		// for hour-scale times (float64 mantissa limits beyond that).
		tm := Time(ms) * Microsecond
		d := FromSeconds(tm.Seconds()) - tm
		if d < 0 {
			d = -d
		}
		return d <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromNanoAndMicro(t *testing.T) {
	if got := FromNanoseconds(30.5); got != 30500*Picosecond {
		t.Errorf("FromNanoseconds(30.5) = %v", got)
	}
	if got := FromMicroseconds(8.78); got != 8780*Nanosecond {
		t.Errorf("FromMicroseconds(8.78) = %v", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{2 * Second, "2s"},
		{500 * Millisecond, "500ms"},
		{220 * Nanosecond, "220ns"},
		{3190 * Nanosecond, "3.19us"},
		{7 * Picosecond, "7ps"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%d) = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestSize(t *testing.T) {
	if got := (256 * KB).KBytes(); got != 256 {
		t.Errorf("256KB in KB = %v", got)
	}
	if got := (4 * GB).GBytes(); got != 4 {
		t.Errorf("4GB in GB = %v", got)
	}
	if got := (2 * MB).String(); got != "2MB" {
		t.Errorf("2MB String = %q", got)
	}
	if got := (1536 * Byte).String(); got != "1.5KB" {
		t.Errorf("1536B String = %q", got)
	}
}

func TestBandwidthTransferTime(t *testing.T) {
	// 1 GB/s moving 1e9 bytes takes 1 second.
	b := 1 * GBPerSec
	if got := b.TransferTime(Size(1e9)); got != Second {
		t.Errorf("transfer time = %v, want 1s", got)
	}
	// 25.6 GB/s moving 128 bytes: 5 ns.
	b = 25.6 * GBPerSec
	if got := b.TransferTime(128); got != 5*Nanosecond {
		t.Errorf("128B at 25.6GB/s = %v, want 5ns", got)
	}
	// Zero bandwidth must behave as a pure-latency link.
	if got := Bandwidth(0).TransferTime(1 * MB); got != 0 {
		t.Errorf("zero bandwidth transfer = %v, want 0", got)
	}
}

func TestTransferTimeMonotone(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := Size(a), Size(b)
		if x > y {
			x, y = y, x
		}
		bw := 2 * GBPerSec
		return bw.TransferTime(x) <= bw.TransferTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFrequencyCycles(t *testing.T) {
	f := 3.2 * GHz
	// One cycle at 3.2 GHz is 312.5 ps -> rounds to 312 or 313; exact via
	// Cycles(2) must be 625 ps.
	if got := f.Cycles(2); got != 625*Picosecond {
		t.Errorf("2 cycles at 3.2GHz = %v, want 625ps", got)
	}
	if got := f.Cycles(32); got != 10*Nanosecond {
		t.Errorf("32 cycles at 3.2GHz = %v, want 10ns", got)
	}
	o := 1.8 * GHz
	if got := o.Cycles(9); got != 5*Nanosecond {
		t.Errorf("9 cycles at 1.8GHz = %v, want 5ns", got)
	}
}

func TestCyclesAdditivity(t *testing.T) {
	// Cycles(a+b) must equal Cycles computed in one shot within 1 ps of
	// Cycles(a)+Cycles(b) (rounding may differ by at most 1 ps).
	f := func(a, b uint16) bool {
		freq := 3.2 * GHz
		lhs := freq.Cycles(int64(a) + int64(b))
		rhs := freq.Cycles(int64(a)) + freq.Cycles(int64(b))
		d := lhs - rhs
		if d < 0 {
			d = -d
		}
		return d <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlopsAndPower(t *testing.T) {
	if got := (1.38 * PFlops).TF(); math.Abs(got-1380) > 1e-9 {
		t.Errorf("1.38PF in TF = %v", got)
	}
	if got := (437 * MFlops).String(); got != "437MF/s" {
		t.Errorf("437MF String = %q", got)
	}
	if got := (2.35 * Megawatt).KW(); got != 2350 {
		t.Errorf("2.35MW in kW = %v", got)
	}
}

func TestStringFormats(t *testing.T) {
	if got := (2 * GBPerSec).String(); got != "2GB/s" {
		t.Errorf("bandwidth string = %q", got)
	}
	if got := (1.8 * GHz).String(); got != "1.8GHz" {
		t.Errorf("freq string = %q", got)
	}
	if got := (1.026 * PFlops).String(); got != "1.026PF/s" {
		t.Errorf("flops string = %q", got)
	}
}
