// Package wavefront implements the multidimensional wavefront performance
// model of Hoisie, Lubeck and Wasserman (the paper's reference [19]) that
// the authors use to project Sweep3D's best achievable performance: a
// 2-D processor array pipelines K-dimension blocks for each of the eight
// octants, paying a pipeline-fill cost proportional to the array's
// half-perimeter plus a steady-state cost per block step.
package wavefront

import (
	"fmt"

	"roadrunner/internal/units"
)

// Params describes one weak-scaled sweep configuration on an Nx x Ny
// processor array.
type Params struct {
	Nx, Ny  int        // processor array dimensions
	Octants int        // sweep directions (8 for Sweep3D)
	KBlocks int        // K/MK pipeline blocks per octant
	TBlock  units.Time // compute time of one block on one processor
	TComm   units.Time // non-overlapped boundary-exchange time per step
}

// Validate checks the configuration.
func (p Params) Validate() error {
	if p.Nx < 1 || p.Ny < 1 {
		return fmt.Errorf("wavefront: processor array %dx%d", p.Nx, p.Ny)
	}
	if p.Octants < 1 || p.KBlocks < 1 {
		return fmt.Errorf("wavefront: octants %d, kblocks %d", p.Octants, p.KBlocks)
	}
	return nil
}

// Steps returns the number of pipeline steps in one source iteration:
// every processor computes Octants*KBlocks blocks, and the sweep front
// must additionally fill and drain the array once per sweep corner
// (wavefronts start from each of the four corners of the 2-D array, two
// octants each).
func (p Params) Steps() int {
	fill := 4 * (p.Nx + p.Ny - 2)
	return p.Octants*p.KBlocks + fill
}

// IterationTime returns the modelled time of one source iteration.
func (p Params) IterationTime() units.Time {
	return units.Time(p.Steps()) * (p.TBlock + p.TComm)
}

// PipelineEfficiency returns the fraction of steps doing steady-state
// work rather than filling/draining the pipeline.
func (p Params) PipelineEfficiency() float64 {
	work := p.Octants * p.KBlocks
	return float64(work) / float64(p.Steps())
}

// ScaleSeries evaluates the model over a series of square-ish processor
// arrays, returning (ranks, iteration time) pairs. The array for n ranks
// is the most square factorisation.
func ScaleSeries(base Params, rankCounts []int) []struct {
	Ranks int
	Time  units.Time
} {
	out := make([]struct {
		Ranks int
		Time  units.Time
	}, 0, len(rankCounts))
	for _, n := range rankCounts {
		nx, ny := SquarishGrid(n)
		p := base
		p.Nx, p.Ny = nx, ny
		out = append(out, struct {
			Ranks int
			Time  units.Time
		}{n, p.IterationTime()})
	}
	return out
}

// SquarishGrid returns the most-square factorisation nx*ny = n with
// nx <= ny.
func SquarishGrid(n int) (nx, ny int) {
	best := 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			best = d
		}
	}
	return best, n / best
}
