package wavefront

import (
	"testing"
	"testing/quick"

	"roadrunner/internal/units"
)

func TestSteps(t *testing.T) {
	p := Params{Nx: 1, Ny: 1, Octants: 8, KBlocks: 20}
	if p.Steps() != 160 {
		t.Errorf("1x1 steps = %d, want 160", p.Steps())
	}
	p.Nx, p.Ny = 51, 60
	if p.Steps() != 160+4*109 {
		t.Errorf("51x60 steps = %d", p.Steps())
	}
}

func TestIterationTime(t *testing.T) {
	p := Params{Nx: 2, Ny: 2, Octants: 8, KBlocks: 5,
		TBlock: 100 * units.Microsecond, TComm: 10 * units.Microsecond}
	want := units.Time(8*5+4*2) * 110 * units.Microsecond
	if got := p.IterationTime(); got != want {
		t.Errorf("time = %v, want %v", got, want)
	}
}

func TestPipelineEfficiency(t *testing.T) {
	p := Params{Nx: 1, Ny: 1, Octants: 8, KBlocks: 10}
	if e := p.PipelineEfficiency(); e != 1 {
		t.Errorf("1x1 efficiency = %v", e)
	}
	p.Nx, p.Ny = 100, 100
	if e := p.PipelineEfficiency(); e >= 0.2 {
		t.Errorf("100x100 efficiency = %v, should be fill-dominated", e)
	}
}

func TestValidate(t *testing.T) {
	bad := Params{Nx: 0, Ny: 1, Octants: 8, KBlocks: 1}
	if bad.Validate() == nil {
		t.Error("accepted zero array")
	}
	good := Params{Nx: 2, Ny: 2, Octants: 8, KBlocks: 1}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSquarishGrid(t *testing.T) {
	cases := map[int][2]int{
		1: {1, 1}, 12: {3, 4}, 64: {8, 8}, 3060: {51, 60}, 12240: {102, 120},
		97920: {306, 320},
	}
	for n, want := range cases {
		nx, ny := SquarishGrid(n)
		if nx != want[0] || ny != want[1] {
			t.Errorf("SquarishGrid(%d) = %dx%d, want %dx%d", n, nx, ny, want[0], want[1])
		}
	}
}

func TestSquarishGridProperty(t *testing.T) {
	f := func(n uint16) bool {
		v := int(n%5000) + 1
		nx, ny := SquarishGrid(v)
		return nx*ny == v && nx <= ny && nx >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeMonotoneInArraySize(t *testing.T) {
	// Weak scaling: larger arrays take longer per iteration.
	f := func(a, b uint8) bool {
		x, y := int(a%40)+1, int(b%40)+1
		if x > y {
			x, y = y, x
		}
		mk := func(n int) units.Time {
			p := Params{Nx: n, Ny: n, Octants: 8, KBlocks: 20,
				TBlock: 100 * units.Microsecond, TComm: 10 * units.Microsecond}
			return p.IterationTime()
		}
		return mk(x) <= mk(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
