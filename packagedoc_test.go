package roadrunner

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEveryPackageHasDoc enforces the documentation bar: every package
// under internal/ and cmd/, plus this root package, carries a
// package-level doc comment ("Package x ..." / "Command x ...").
// godoc is the first thing a reader of an unfamiliar subsystem sees;
// an undocumented package fails CI, not review.
func TestEveryPackageHasDoc(t *testing.T) {
	var dirs []string
	for _, root := range []string{"internal", "cmd"} {
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				dirs = append(dirs, path)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("walking %s: %v", root, err)
		}
	}
	dirs = append(dirs, ".")

	fset := token.NewFileSet()
	for _, dir := range dirs {
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", dir, err)
		}
		for name, pkg := range pkgs {
			documented := false
			var files []string
			for fname, f := range pkg.Files {
				files = append(files, fname)
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					documented = true
				}
			}
			if !documented {
				t.Errorf("package %s (%s) has no package doc comment on any of %v",
					name, dir, files)
			}
		}
	}
}
