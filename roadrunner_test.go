package roadrunner

import (
	"context"
	"regexp"
	"testing"

	"roadrunner/internal/fabric"
	"roadrunner/internal/ib"
	"roadrunner/internal/transport"
)

func TestFacadeExperiments(t *testing.T) {
	if len(Experiments()) < 19 {
		t.Errorf("experiments = %d", len(Experiments()))
	}
	if len(ExperimentIDs()) != len(Experiments()) {
		t.Error("ID list inconsistent")
	}
	art, err := RunExperiment("table1")
	if err != nil {
		t.Fatal(err)
	}
	if !art.Checks.AllOK() {
		t.Errorf("table1 failures: %v", art.Checks.Failures())
	}
	if _, err := RunExperiment("bogus"); err == nil {
		t.Error("bogus experiment accepted")
	}
}

func TestFacadeSuite(t *testing.T) {
	ctx := context.Background()
	results, err := RunExperiments(ctx, []string{"table1", "table2"}, SuiteOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].ID != "table1" || results[1].ID != "table2" {
		t.Fatalf("results = %v", results)
	}
	if n := len(FailedResults(results)); n != 0 {
		t.Errorf("%d failed results", n)
	}
	if _, err := RunExperiments(ctx, []string{"bogus"}, SuiteOptions{}); err == nil {
		t.Error("bogus suite accepted")
	}
	cache, err := OpenArtifactCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunExperiments(ctx, []string{"table1"}, SuiteOptions{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	again, err := RunExperiments(ctx, []string{"table1"}, SuiteOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !again[0].CacheHit {
		t.Error("no cache hit through the facade")
	}
	if !regexp.MustCompile(`^[0-9a-f]{64}$`).MatchString(ModelFingerprint()) {
		t.Errorf("fingerprint = %q", ModelFingerprint())
	}
}

func TestFacadeMachine(t *testing.T) {
	m := Machine()
	if m.Nodes() != 3060 {
		t.Errorf("nodes = %d", m.Nodes())
	}
	if ScaledMachine(2).Nodes() != 360 {
		t.Error("scaled machine")
	}
	if Fabric().Nodes() != 3060 {
		t.Error("fabric")
	}
}

func TestFacadeCollectives(t *testing.T) {
	if len(CollectiveOps()) < 7 {
		t.Errorf("ops = %d", len(CollectiveOps()))
	}
	res, err := RunCollective(CollectiveOps()[0], 16, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranks != 16 || res.Time <= 0 {
		t.Errorf("result = %+v", res)
	}
	if _, err := RunCollective("bcast-binomial", 4000, 0); err == nil {
		t.Error("oversized communicator accepted")
	}
	if _, err := RunCollective("bcast-binomial", -1, 0); err == nil {
		t.Error("negative node count accepted")
	}
	if _, err := RunCollective("bcast-binomial", 0, 0); err == nil {
		t.Error("zero node count accepted")
	}
	if _, err := RunCollective("nope", 4, 0); err == nil {
		t.Error("unknown op accepted")
	}
}

func TestFacadeCongestedCollectives(t *testing.T) {
	// Cross-CU alltoall: the congested transport must be slower than the
	// infinite-capacity fabric and report its contended links.
	base, err := RunCollective("alltoall-pairwise", 360, 32*1024)
	if err != nil {
		t.Fatal(err)
	}
	cong, err := RunCollectiveCongested("alltoall-pairwise", 360, 32*1024)
	if err != nil {
		t.Fatal(err)
	}
	if cong.Time <= base.Time {
		t.Errorf("congested %v !> infinite-capacity %v", cong.Time, base.Time)
	}
	if base.Congestion != nil {
		t.Error("infinite-capacity run carries a census")
	}
	c := cong.Congestion
	if c == nil || c.Links == 0 || c.TotalWait <= 0 || len(c.Top) == 0 {
		t.Fatalf("census = %+v", c)
	}
	if _, err := RunCollectiveCongested("nope", 4, 0); err == nil {
		t.Error("unknown op accepted")
	}
	if _, err := RunCollectiveCongested("bcast-binomial", 4000, 0); err == nil {
		t.Error("oversized communicator accepted")
	}
}

func TestFacadeSweep(t *testing.T) {
	cfg := SweepConfig{I: 3, J: 3, K: 4, MK: 2, Angles: 2}
	res := SolveSweep(cfg, 2, 2)
	if res.BalanceError() > 1e-11 {
		t.Errorf("balance = %e", res.BalanceError())
	}
	for _, series := range []string{"opteron", "measured", "best"} {
		tm, err := SweepIterationTime(PaperSweepConfig(), 64, series)
		if err != nil || tm <= 0 {
			t.Errorf("%s: %v %v", series, tm, err)
		}
	}
	if _, err := SweepIterationTime(PaperSweepConfig(), 64, "nope"); err == nil {
		t.Error("bad series accepted")
	}
}

func TestFacadeTraceReplay(t *testing.T) {
	cfg := SweepConfig{I: 2, J: 2, K: 4, MK: 2, Angles: 2}
	tr, err := CaptureSweepTrace(cfg, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Meta.Ranks != 4 || len(tr.Records) == 0 {
		t.Fatalf("trace %+v", tr.Meta)
	}
	path := t.TempDir() + "/sweep.trace.jsonl"
	if err := SaveTrace(path, tr); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	fab := Fabric()
	places := make([]transport.Endpoint, loaded.Meta.Ranks)
	for i := range places {
		places[i] = transport.Endpoint{Node: fabric.FromGlobal(i * 180), Core: 1}
	}
	res, err := ReplayTrace(loaded, TraceReplayConfig{
		Fabric:  fab,
		Profile: ib.OpenMPI(),
		Places:  places,
		Policy:  transport.Congested(),
		Observe: ObserveAll,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := loaded.Stats()
	if res.Time <= 0 || int(res.Messages) != s.Sends || len(res.Sends) != s.Sends {
		t.Fatalf("replay %+v for stats %+v", res, s)
	}
	if res.Congestion == nil {
		t.Fatal("congested replay carries no census")
	}
}
