package roadrunner

import (
	"testing"
)

func TestFacadeExperiments(t *testing.T) {
	if len(Experiments()) < 19 {
		t.Errorf("experiments = %d", len(Experiments()))
	}
	if len(ExperimentIDs()) != len(Experiments()) {
		t.Error("ID list inconsistent")
	}
	art, err := RunExperiment("table1")
	if err != nil {
		t.Fatal(err)
	}
	if !art.Checks.AllOK() {
		t.Errorf("table1 failures: %v", art.Checks.Failures())
	}
	if _, err := RunExperiment("bogus"); err == nil {
		t.Error("bogus experiment accepted")
	}
}

func TestFacadeMachine(t *testing.T) {
	m := Machine()
	if m.Nodes() != 3060 {
		t.Errorf("nodes = %d", m.Nodes())
	}
	if ScaledMachine(2).Nodes() != 360 {
		t.Error("scaled machine")
	}
	if Fabric().Nodes() != 3060 {
		t.Error("fabric")
	}
}

func TestFacadeSweep(t *testing.T) {
	cfg := SweepConfig{I: 3, J: 3, K: 4, MK: 2, Angles: 2}
	res := SolveSweep(cfg, 2, 2)
	if res.BalanceError() > 1e-11 {
		t.Errorf("balance = %e", res.BalanceError())
	}
	for _, series := range []string{"opteron", "measured", "best"} {
		tm, err := SweepIterationTime(PaperSweepConfig(), 64, series)
		if err != nil || tm <= 0 {
			t.Errorf("%s: %v %v", series, tm, err)
		}
	}
	if _, err := SweepIterationTime(PaperSweepConfig(), 64, "nope"); err == nil {
		t.Error("bad series accepted")
	}
}
